package cluster

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"sturgeon/internal/coordinator"
	"sturgeon/internal/faults"
	"sturgeon/internal/invariant"
	"sturgeon/internal/obs"
)

// The partition battery: the coordpartition8 scenario pins the fenced-
// lease control plane under directed partitions, and the chaos matrix
// drives randomized drop/delay/reorder/duplication schedules (plus a
// coordinator kill) through both engines at several parallelism levels
// with the invariant checker attached. The one unforgivable outcome —
// Σ(effective caps) escaping the budget while the control plane
// misbehaves — fails every test here.

const partitionSeed = 20260808

// partitionFleet builds the pinned coordpartition8 scenario with an
// invariant checker attached. leased=false is the stale-cap-cliff
// baseline the win gate compares against.
func partitionFleet(t *testing.T, leased bool, parallelism int, eng Engine) (*Cluster, CoordFleetOptions) {
	t.Helper()
	o := DefaultCoordFleet(partitionSeed)
	o.Coordinated = true
	o.Partition = true
	o.Leased = leased
	c, err := BuildCoordFleet(o)
	if err != nil {
		t.Fatal(err)
	}
	c.Parallelism = parallelism
	c.Engine = eng
	c.Invariants = invariant.New(o.EvenCapW*float64(o.Nodes), 0)
	return c, o
}

func requireNoViolations(t *testing.T, label string, k *invariant.Checker) {
	t.Helper()
	if k.Checks() == 0 {
		t.Fatalf("%s: invariant checker never ran", label)
	}
	if v := k.Violations(); len(v) > 0 {
		t.Fatalf("%s: %d invariant violations (+%d dropped), first: %s",
			label, len(v), k.DroppedViolations(), v[0])
	}
}

// TestPartitionLeasedBeatsStaleCliff is the tentpole's win gate: under
// the pinned partition schedule, fenced leases with the degraded-mode
// ratchet must recover at least as much fleet BE throughput as the
// legacy stale-cap cliff (where the coordinator freezes the partitioned
// nodes' watts and nobody can spend them) — without a single invariant
// violation on either arm.
func TestPartitionLeasedBeatsStaleCliff(t *testing.T) {
	stale, o := partitionFleet(t, false, 1, EngineStep)
	staleRes := stale.Run(o.Trace(), o.DurationS)
	leasedC, _ := partitionFleet(t, true, 1, EngineStep)
	leasedRes := leasedC.Run(o.Trace(), o.DurationS)

	requireNoViolations(t, "stale baseline", stale.Invariants)
	requireNoViolations(t, "leased", leasedC.Invariants)
	t.Logf("stale BE %.2f leased BE %.2f (max Σcaps stale %.2f leased %.2f, excess %.3f/%.3f)",
		staleRes.MeanBEThroughputUPS, leasedRes.MeanBEThroughputUPS,
		stale.Invariants.MaxSumCapsW(), leasedC.Invariants.MaxSumCapsW(),
		stale.Invariants.MaxExcessW(), leasedC.Invariants.MaxExcessW())

	if leasedRes.MeanBEThroughputUPS < staleRes.MeanBEThroughputUPS {
		t.Errorf("leased degraded mode lost BE throughput to the stale-cap cliff: %.2f < %.2f",
			leasedRes.MeanBEThroughputUPS, staleRes.MeanBEThroughputUPS)
	}
	if !leasedRes.Coord.Leased {
		t.Fatal("leased run never saw a leased grant")
	}
	// The pinned schedule holds the STRICT budget bound (no transient
	// grant-lag overshoot), so pin that too: Σ(effective caps) never
	// exceeds the budget at any simulated second, on either arm.
	for label, k := range map[string]*invariant.Checker{"stale": stale.Invariants, "leased": leasedC.Invariants} {
		if k.MaxExcessW() > 1e-6 {
			t.Errorf("%s arm exceeded the budget by %.3f W", label, k.MaxExcessW())
		}
	}
	if leasedRes.Coord.DegradedEpisodes < 2 {
		t.Errorf("expected ≥2 degraded episodes (node 7 and the asymmetric node 5), got %d",
			leasedRes.Coord.DegradedEpisodes)
	}
	if leasedRes.Coord.DegradedExits < 2 {
		t.Errorf("expected every partitioned node to rejoin, got %d exits", leasedRes.Coord.DegradedExits)
	}
	if leasedRes.Coord.LeaseRatchetW <= 0 {
		t.Error("degraded mode never ratcheted any watts")
	}
	if staleRes.Coord.Leased || staleRes.Coord.DegradedEpisodes != 0 {
		t.Errorf("stale baseline unexpectedly took lease paths: %+v", staleRes.Coord)
	}
}

// TestGoldenCoordPartitionSummary pins the leased partition run's full
// trajectory byte-for-byte.
func TestGoldenCoordPartitionSummary(t *testing.T) {
	c, o := partitionFleet(t, true, 1, EngineStep)
	got := c.Run(o.Trace(), o.DurationS).Summary()
	requireNoViolations(t, "golden", c.Invariants)
	path := filepath.Join("testdata", "coord_partition_summary.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("partition summary drifted from golden fixture.\n--- got ---\n%s--- want ---\n%s"+
			"(if the change is intentional, regenerate with `go test ./internal/cluster -run Golden -update`)",
			got, want)
	}
}

// TestPartitionCrossEngineParallelism pins the acceptance criterion:
// the leased partition run is byte-identical across engines and
// stepping parallelism, and the checker stays clean on every arm.
func TestPartitionCrossEngineParallelism(t *testing.T) {
	ref, o := partitionFleet(t, true, 1, EngineStep)
	want := ref.Run(o.Trace(), o.DurationS).Summary()
	requireNoViolations(t, "step/par=1", ref.Invariants)
	for _, eng := range []Engine{EngineStep, EngineEvent} {
		for _, par := range []int{1, 2, 4, 8} {
			if eng == EngineStep && par == 1 {
				continue
			}
			c, _ := partitionFleet(t, true, par, eng)
			got := c.Run(o.Trace(), o.DurationS).Summary()
			label := map[Engine]string{EngineStep: "step", EngineEvent: "event"}[eng]
			requireNoViolations(t, label, c.Invariants)
			if got != want {
				t.Fatalf("summary diverges at engine=%s parallelism=%d.\n--- ref ---\n%s--- got ---\n%s",
					label, par, want, got)
			}
		}
	}
}

// chaosFleet builds one chaos-matrix arm: a leased coordinated fleet
// under a randomized network-fault plan, optionally with the mid-run
// coordinator kill+recovery.
func chaosFleet(t *testing.T, seed int64, spec faults.NetSpec, kill bool,
	parallelism int, eng Engine) (*Cluster, CoordFleetOptions) {
	t.Helper()
	o := DefaultCoordFleet(partitionSeed)
	o.Coordinated = true
	o.Leased = true
	o.CrashRestart = kill
	o.Net = faults.NewNet(spec, seed, o.DurationS/o.EpochS, o.Nodes)
	c, err := BuildCoordFleet(o)
	if err != nil {
		t.Fatal(err)
	}
	c.Parallelism = parallelism
	c.Engine = eng
	c.Invariants = invariant.New(o.EvenCapW*float64(o.Nodes), 0)
	return c, o
}

// TestPartitionChaosBatteryInvariants is the full chaos battery:
// partitions × delay/reorder/duplication/drop × coordinator kill, each
// arm run on both engines at parallelism 1/2/4/8 — byte-identical
// summaries and zero invariant violations everywhere.
func TestPartitionChaosBatteryInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos battery is long")
	}
	heavy := faults.NetSpec{PartitionRate: 0.04, MeanPartitionEpochs: 3,
		DropRate: 0.08, DelayRate: 0.08, DupRate: 0.08, ReorderRate: 0.5}
	arms := []struct {
		name string
		seed int64
		spec faults.NetSpec
		kill bool
	}{
		{"default", 1, faults.DefaultNetSpec(), false},
		{"heavy", 2, heavy, false},
		{"heavy-kill", 3, heavy, true},
	}
	for _, arm := range arms {
		t.Run(arm.name, func(t *testing.T) {
			ref, o := chaosFleet(t, arm.seed, arm.spec, arm.kill, 1, EngineStep)
			want := ref.Run(o.Trace(), o.DurationS).Summary()
			requireNoViolations(t, arm.name+"/step/1", ref.Invariants)
			for _, eng := range []Engine{EngineStep, EngineEvent} {
				for _, par := range []int{1, 2, 4, 8} {
					if eng == EngineStep && par == 1 {
						continue
					}
					c, _ := chaosFleet(t, arm.seed, arm.spec, arm.kill, par, eng)
					got := c.Run(o.Trace(), o.DurationS).Summary()
					label := map[Engine]string{EngineStep: "step", EngineEvent: "event"}[eng]
					requireNoViolations(t, arm.name+"/"+label, c.Invariants)
					if got != want {
						t.Fatalf("%s diverges at engine=%s parallelism=%d.\n--- ref ---\n%s--- got ---\n%s",
							arm.name, label, par, want, got)
					}
				}
			}
		})
	}
}

// TestNetChaosAccounting cross-checks the run's message-fate tallies
// against an independently rebuilt copy of the same net plan — the
// counters must be a pure function of (spec, seed, horizon, fleet).
func TestNetChaosAccounting(t *testing.T) {
	c, o := chaosFleet(t, 5, faults.DefaultNetSpec(), false, 1, EngineStep)
	res := c.Run(o.Trace(), o.DurationS)
	if res.Coord.Net == (coordinator.NetStats{}) {
		t.Fatal("net chaos imposed no message fates — the battery is vacuous")
	}
	if res.Coord.Net.Delayed > 0 && res.Coord.Net.DeliveredLate == 0 {
		t.Errorf("delayed reports were never flushed: %+v", res.Coord.Net)
	}
	if res.Coord.DegradedEpisodes == 0 {
		t.Error("chaos run never entered degraded mode")
	}
	t.Logf("net stats %+v, coord %+v", res.Coord.Net, res.Coord)
}

// leaseFakeTransport grants every node the same fenced lease (two-epoch
// TTL, tokens fenced by epoch) and, from failFromEpoch on, fails the
// exchange for failNode — a one-node renewal blackout with no real
// coordinator behind it.
type leaseFakeTransport struct {
	capW, floorW  float64
	failNode      string
	failFromEpoch int
}

func (f *leaseFakeTransport) Report(_ context.Context, r coordinator.NodeReport) (coordinator.Grant, error) {
	if r.NodeID == f.failNode && r.Epoch >= f.failFromEpoch {
		return coordinator.Grant{}, context.DeadlineExceeded
	}
	return coordinator.Grant{Schema: coordinator.Schema, NodeID: r.NodeID, Epoch: r.Epoch,
		CapW: f.capW, Token: int64(r.Epoch), LeaseEpochs: 2, FloorW: f.floorW}, nil
}

func (f *leaseFakeTransport) Status(context.Context) (*coordinator.FleetStatus, error) {
	return nil, context.DeadlineExceeded
}

// TestQuiescenceLeaseWake: a node's lease renewals stop while the whole
// fleet sits at a fixed point on a flat trace. The degraded ratchet
// then moves the node's cap every second inside the quiescent stretch,
// and that descent is driven solely by KindLease wake-ups (ratchet cap
// changes deliberately do not schedule settle events — see engine.go).
// Without the wake-ups the engine freezes the cap above the floor for a
// whole epoch — the stale-cap cliff the lease exists to prevent.
func TestQuiescenceLeaseWake(t *testing.T) {
	const durationS = 300
	build := func(t *testing.T) *Cluster {
		c := quiesceBase(t, 4, durationS)
		c.Coord = &Coordination{Transport: &leaseFakeTransport{
			capW: 115, floorW: 88, failNode: "node-000", failFromEpoch: 2}, EpochS: 60}
		return c
	}
	checkQuiesce(t, build, durationS, func(c *Cluster) { c.testDropLeaseWakes = true })
}

// TestFlappingPartitionBackoffNoReset pins the readmission backoff
// under flapping node partitions: a node that drops out again while
// still serving its doubled readmission probation must not have the
// backoff reset — the streak restarts, the bar stays doubled. Journal-
// pinned and cross-engine.
func TestFlappingPartitionBackoffNoReset(t *testing.T) {
	const durationS = 600
	timeline := func(eng Engine) []obs.Event {
		sink := obs.New(0)
		c := quiesceBase(t, 4, durationS)
		c.Health = HealthOptions{ReadmitAfter: 30}
		c.SetFaultPlans(nil, faults.Manual(durationS,
			faults.Episode{Kind: faults.NodeCrash, Start: 100, End: 115},
			// Second outage: evicts again, doubling the readmission bar.
			faults.Episode{Kind: faults.NodeCrash, Start: 200, End: 215},
			// Third outage opens mid-probation (the alive streak since the
			// second recovery is shorter than the doubled bar, so the node
			// is still evicted): no new eviction, and the doubled bar must
			// survive the flap rather than reset.
			faults.Episode{Kind: faults.NodeCrash, Start: 240, End: 255},
		))
		c.SetObs(sink)
		c.Engine = eng
		c.Run(quiesceFlatTrace(durationS), durationS)
		var evs []obs.Event
		for _, ev := range sink.Journal.Since(0) {
			if ev.Type == obs.EventNodeEvicted || ev.Type == obs.EventNodeReadmitted {
				evs = append(evs, ev)
			}
		}
		return evs
	}
	stepEvs := timeline(EngineStep)
	eventEvs := timeline(EngineEvent)
	if len(eventEvs) != len(stepEvs) {
		t.Fatalf("engines disagree on health event count: %d vs %d", len(stepEvs), len(eventEvs))
	}
	for i := range stepEvs {
		s, e := stepEvs[i], eventEvs[i]
		if s.T != e.T || s.Type != e.Type || s.Node != e.Node {
			t.Fatalf("health event %d differs across engines: step %s@%.0f vs event %s@%.0f",
				i, s.Type, s.T, e.Type, e.T)
		}
	}
	// Exactly four events: evict, readmit (base bar), evict (doubled
	// bar), readmit. The third outage must NOT add an eviction (the node
	// was still serving probation) and must NOT shrink the bar.
	if len(stepEvs) != 4 {
		var got []string
		for _, ev := range stepEvs {
			got = append(got, fmt.Sprintf("%s@%.0f", ev.Type, ev.T))
		}
		t.Fatalf("expected evict/readmit/evict/readmit, got %v", got)
	}
	// The first readmission pays the base bar from the first recovery
	// (t=116); the last pays the doubled bar from the LAST recovery
	// (t=256). A detector that reset its backoff when the partition
	// re-opened mid-probation would readmit a base bar after 256.
	baseBar := stepEvs[1].T - 116
	lastBar := stepEvs[3].T - 256
	if lastBar < 2*baseBar-1 {
		t.Errorf("backoff reset by the mid-probation flap: base bar %.0f s, final bar %.0f s (want ≥ %.0f)",
			baseBar, lastBar, 2*baseBar-1)
	}
}
