// Package cluster models the context of the paper's Fig. 4: a
// cluster-level scheduler dispatches user queries across many
// Sturgeon-managed nodes. The paper's evaluation is single-node; this
// package provides the surrounding fleet so the node runtime can be
// studied at datacenter scale — per-node Sturgeon instances, a query
// dispatcher with pluggable policies, a best-effort job queue placed onto
// whatever capacity the nodes free up, and fleet-level utilization and
// energy accounting.
package cluster

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"

	"sturgeon/internal/control"
	"sturgeon/internal/coordinator"
	"sturgeon/internal/faults"
	"sturgeon/internal/hw"
	"sturgeon/internal/invariant"
	"sturgeon/internal/obs"
	"sturgeon/internal/pool"
	"sturgeon/internal/power"
	"sturgeon/internal/queueing"
	"sturgeon/internal/sim"
	"sturgeon/internal/workload"
)

// DispatchPolicy selects the per-node share of the cluster's offered
// load each interval.
type DispatchPolicy interface {
	// Name identifies the policy in reports.
	Name() string
	// Shares returns non-negative weights (normalized by the caller)
	// given each node's most recent interval stats; nil stats on the
	// first interval.
	Shares(nodes []NodeState) []float64
}

// NodeState is the dispatcher-visible state of one node.
type NodeState struct {
	// Last is the node's previous interval (zero value on the first).
	Last sim.IntervalStats
	// Healthy is false while the node is considered out of rotation.
	Healthy bool
}

// sharesInto is the optional allocation-free fast path of a
// DispatchPolicy: SharesInto writes the same weights Shares would return
// into dst (length len(nodes)), assigning every index. The cluster's
// step loop uses it with a reused buffer; Shares remains the
// public contract and is implemented in terms of SharesInto by every
// built-in policy.
type sharesInto interface {
	SharesInto(nodes []NodeState, dst []float64)
}

// RoundRobin spreads load evenly — the baseline dispatcher.
type RoundRobin struct{}

// Name implements DispatchPolicy.
func (RoundRobin) Name() string { return "round-robin" }

// Shares implements DispatchPolicy.
func (RoundRobin) Shares(nodes []NodeState) []float64 {
	out := make([]float64, len(nodes))
	RoundRobin{}.SharesInto(nodes, out)
	return out
}

// SharesInto implements the allocation-free fast path.
func (RoundRobin) SharesInto(nodes []NodeState, dst []float64) {
	for i, n := range nodes {
		if n.Healthy {
			dst[i] = 1
		} else {
			dst[i] = 0
		}
	}
}

// LeastLoaded weights nodes by smoothed latency headroom against the
// fleet average. The gain is deliberately small and the per-node p95 is
// EWMA-filtered: each node runs its own Sturgeon controller, and an
// aggressive dispatcher fighting twenty per-node control loops herds the
// fleet onto whichever node last looked fastest and saturates it.
type LeastLoaded struct {
	// Gain scales the share deviation (default 0.15); Alpha the p95
	// smoothing factor (default 0.2).
	Gain, Alpha float64

	smoothed []float64
}

// Name implements DispatchPolicy.
func (*LeastLoaded) Name() string { return "least-loaded" }

// Shares implements DispatchPolicy.
func (p *LeastLoaded) Shares(nodes []NodeState) []float64 {
	out := make([]float64, len(nodes))
	p.SharesInto(nodes, out)
	return out
}

// SharesInto implements the allocation-free fast path.
func (p *LeastLoaded) SharesInto(nodes []NodeState, dst []float64) {
	gain := p.Gain
	if gain <= 0 {
		gain = 0.15
	}
	alpha := p.Alpha
	if alpha <= 0 {
		alpha = 0.2
	}
	if len(p.smoothed) != len(nodes) {
		p.smoothed = make([]float64, len(nodes))
	}
	var sum float64
	var cnt int
	for i, n := range nodes {
		if n.Last.P95 > 0 {
			if p.smoothed[i] == 0 {
				p.smoothed[i] = n.Last.P95
			} else {
				p.smoothed[i] = alpha*n.Last.P95 + (1-alpha)*p.smoothed[i]
			}
		}
		if n.Healthy && p.smoothed[i] > 0 {
			sum += p.smoothed[i]
			cnt++
		}
	}
	if cnt == 0 {
		RoundRobin{}.SharesInto(nodes, dst)
		return
	}
	ref := sum / float64(cnt)
	for i, n := range nodes {
		if !n.Healthy {
			dst[i] = 0
			continue
		}
		if p.smoothed[i] <= 0 {
			dst[i] = 1
			continue
		}
		w := 1 + gain*(ref-p.smoothed[i])/ref
		if w < 1-gain {
			w = 1 - gain
		}
		if w > 1+gain {
			w = 1 + gain
		}
		dst[i] = w
	}
}

// Skewed spreads load unevenly and deterministically: node i's weight
// follows a phase-shifted sinusoid around 1, so at any instant some
// nodes run hot while others idle, and the roles rotate over a period.
// It models sharded or geo-affine services whose per-node load is never
// uniform — exactly the imbalance that makes fleet-level power-budget
// arbitration (internal/coordinator) worth having: an even watt split
// strands headroom on the cold nodes while the hot ones throttle.
type Skewed struct {
	// Amp is the weight swing around 1 (default 0.5, clamped to [0, 0.95]);
	// PeriodS the rotation period in intervals (default 120).
	Amp, PeriodS float64

	step int
}

// Name implements DispatchPolicy.
func (*Skewed) Name() string { return "skewed" }

// Shares implements DispatchPolicy. It keys the phase off an internal
// interval counter — Shares is called exactly once per simulated second,
// serially — so the schedule is a pure function of the call sequence.
func (p *Skewed) Shares(nodes []NodeState) []float64 {
	out := make([]float64, len(nodes))
	p.SharesInto(nodes, out)
	return out
}

// SharesInto implements the allocation-free fast path. It advances the
// same internal interval counter Shares does.
func (p *Skewed) SharesInto(nodes []NodeState, dst []float64) {
	amp := p.Amp
	if amp <= 0 {
		amp = 0.5
	}
	if amp > 0.95 {
		amp = 0.95
	}
	period := p.PeriodS
	if period <= 0 {
		period = 120
	}
	t := float64(p.step)
	p.step++
	for i, n := range nodes {
		if !n.Healthy {
			dst[i] = 0
			continue
		}
		phase := 2 * math.Pi * (t/period + float64(i)/float64(len(nodes)))
		dst[i] = 1 + amp*math.Sin(phase)
	}
}

// Coordination wires the fleet to a power-budget coordinator
// (internal/coordinator): every EpochS intervals each node reports its
// slack telemetry through the Transport and applies whatever cap comes
// back. Reports are submitted serially in node-index order inside Run's
// merge phase, so with the deterministic in-process transport the whole
// grant schedule — and therefore the run — stays byte-identical at any
// stepping Parallelism.
type Coordination struct {
	// Transport carries the reports (coordinator.Local for seeded
	// simulation, coordinator.Client for a remote sturgeond).
	Transport coordinator.Transport
	// EpochS is the reporting period in intervals (default 10).
	EpochS int
	// Chaos optionally schedules dropped reports and coordinator outage
	// windows, exercising the last-granted-cap fallback.
	Chaos *coordinator.ChaosPlan
	// Kill optionally schedules deterministic coordinator crash windows:
	// every epoch inside a window is lost whole (nodes keep their
	// last-granted caps), and at the first epoch past a window Restart is
	// invoked to stand a recovered coordinator back up before grants
	// resume. Unlike a Chaos outage, a kill destroys the coordinator's
	// in-memory state — what survives is whatever Restart can recover.
	Kill *faults.CoordKillPlan
	// Restart builds the replacement transport when a kill window ends —
	// the simulated restart-from-state-dir (coordinator.Recover against
	// the store the dead coordinator was persisting into). Nil, or an
	// erroring Restart, keeps the coordinator down for the epoch.
	Restart func() (coordinator.Transport, coordinator.RecoveryInfo, error)
	// RatchetSteps is the degraded-mode descent length in governor
	// intervals (simulated seconds): a node whose lease renewals stop
	// ratchets from its leased cap to its lease floor over this many
	// seconds, clamped so it lands no later than the lease expiry
	// (default control.DefaultRatchetSteps). Only read once the
	// coordinator's grants carry leases (coordinator.Options.LeaseEpochs).
	RatchetSteps int
}

func (c *Coordination) epochS() int {
	if c.EpochS <= 0 {
		return 10
	}
	return c.EpochS
}

// CoordStats tallies the grant loop's activity over a run.
type CoordStats struct {
	// Epochs counts reporting rounds attempted; OutageEpochs those lost
	// whole to a coordinator outage.
	Epochs, OutageEpochs int
	// DroppedReports counts per-node submissions lost in transit;
	// Fallbacks counts node-epochs that kept the last-granted cap
	// because no fresh grant arrived (drop, outage, crash or transport
	// error).
	DroppedReports, Fallbacks int
	// CrashEpochs counts epochs lost to a coordinator kill window;
	// Recoveries counts successful restarts from durable state.
	CrashEpochs, Recoveries int
	// MovedW is the cumulative |Δcap| the fleet applied.
	MovedW float64
	// Leased marks runs whose grants carried fenced leases.
	// DegradedEpisodes counts entries into autonomous degraded mode
	// (first missed renewal of an episode), DegradedExits the renewals
	// that ended one, and StaleGrantRejects the grants the fencing token
	// refused; LeaseRatchetW is the cumulative watt volume the autonomous
	// ratchet shed.
	Leased                                             bool
	DegradedEpisodes, DegradedExits, StaleGrantRejects int
	LeaseRatchetW                                      float64
	// Net tallies the message fates imposed by a coordinator.NetChaos
	// transport wrapper (zero when the run had none).
	Net coordinator.NetStats
}

// Engine selects the fleet stepping strategy.
type Engine int

const (
	// EngineStep steps every node every simulated second — the reference
	// semantics and the default.
	EngineStep Engine = iota
	// EngineEvent is the discrete-event engine (DESIGN.md §13): nodes at
	// a proven fixed point skip ahead to their next scheduled wake-up
	// (fault edges, coordinator epochs, eviction/backoff timers, trace
	// breakpoints), and fully quiescent stretches are replicated without
	// touching the fleet. Seeded runs are byte-identical to EngineStep —
	// same Summary, same journal — at any Parallelism.
	EngineEvent
)

// Cluster is a fleet of identical Sturgeon-managed nodes serving one LS
// service, each co-located with a BE application.
type Cluster struct {
	Nodes  []*sim.Node
	Ctrls  []control.Controller
	Budget power.Watts
	Policy DispatchPolicy
	// LS is the fleet's service; PeakQPS scales the cluster trace.
	LS workload.Profile
	// Health tunes the failure detector (zero value = defaults).
	Health HealthOptions
	// Injectors optionally carries one fault injector per node (nil
	// entries run that node clean). Install with InjectFaults or
	// SetFaultPlans.
	Injectors []*faults.Injector
	// Coord, when non-nil, subjects the fleet to coordinated per-node
	// power caps (see Coordination). Nil fleets run every node at the
	// static Budget, exactly as before.
	Coord *Coordination
	// Place, when non-nil, puts the fleet's BE jobs under the placement
	// and migration engine (see Placement). Nil fleets keep whatever
	// pairing they were built with.
	Place *Placement
	// Parallelism is the per-interval node-stepping fan-out: 0 (the
	// default) uses GOMAXPROCS workers, 1 steps the fleet serially, n > 1
	// caps the pool at n. Each node owns its simulator, controller and
	// injector state, shares are computed before the fan-out and all
	// cross-node aggregation happens serially in node-index order
	// afterwards, so the setting changes wall-clock time only — seeded
	// runs are byte-identical at every worker count (see DESIGN.md §9).
	Parallelism int
	// Engine selects per-second stepping (EngineStep, the default) or the
	// discrete-event engine (EngineEvent). Both produce byte-identical
	// results; EngineEvent is orders of magnitude faster on large, mostly
	// quiescent fleets.
	Engine Engine
	// TraceBreaks lists every step index at which the load trace may
	// change value (workload.Stair.BreakSteps supplies it). Only
	// EngineEvent reads it: a declared-piecewise-constant trace lets
	// quiescent stretches be skipped whole, while a nil TraceBreaks makes
	// the engine conservatively treat every second as a potential
	// inflection. The contract is one-sided — listing extra steps is
	// harmless, omitting a step where the trace moves breaks the
	// cross-engine equivalence.
	TraceBreaks []int

	// Invariants, when non-nil, receives the fleet's effective-cap view
	// every merged second and the coordinator's ground-truth status after
	// every reachable epoch exchange (internal/invariant). Strictly
	// read-only: attaching a checker never changes a run's results.
	Invariants *invariant.Checker

	// rng is the fleet's sole randomness source, injected via the New
	// seed — no package-level math/rand is consulted anywhere, so two
	// clusters built with the same seed behave identically (including
	// under `go test -count=2` and the chaos harness).
	rng *rand.Rand
	// caps is each node's power cap currently in force: Budget
	// everywhere until a coordinator grant moves it.
	caps []power.Watts
	// leases tracks each node's fenced cap lease; nil until the first
	// leased grant arrives (coordinator.Options.LeaseEpochs > 0), so
	// lease-free fleets take none of these paths. ratcheted flags nodes
	// whose cap the autonomous ratchet moved during the current merge —
	// the event engine routes those cap changes through KindLease
	// wake-ups instead of settle events, which is what makes the lease
	// wake category load-bearing (and testable by dropping it).
	leases    []control.LeaseTracker
	ratcheted []bool
	// invViews is the reusable scratch buffer behind observeInvariants.
	invViews []invariant.NodeView

	// Observability (nil = uninstrumented; see SetObs). nodeSinks holds
	// one staging child per node, drained serially by drainNode; drained
	// and spanDrained remember each staging journal's/tracer's last
	// merged sequence number.
	obs         *obs.Sink
	nodeSinks   []*obs.Sink
	drained     []int64
	spanDrained []int64
	capGauges   []*obs.Gauge
	evictCtr    *obs.Counter
	readmitCtr  *obs.Counter
	grantCtr    *obs.Counter
	faultCtr    *obs.Counter
	recoveryCtr *obs.Counter
	migrCtr     *obs.Counter
	planCtr     *obs.Counter
	// Fleet timeline series (nil = no recorder attached), fed once per
	// simulated second from the serial merge — and from runEvent's
	// replication loop, so both engines record identical timelines.
	tlBE    *obs.TSeries
	tlQoS   *obs.TSeries
	tlPower *obs.TSeries
	tlCap   *obs.TSeries
	tlSlack *obs.TSeries
	tlMigr  *obs.TSeries

	// Broken-scheduler stubs for the quiescence regression battery: each
	// suppresses one wake-up category in runEvent, simulating the
	// scheduling bug the category exists to prevent. Tests assert the
	// stubbed engine *diverges* from EngineStep while the real engine
	// does not. Never set outside tests.
	testDropFaultWakes  bool
	testDropEpochWakes  bool
	testDropTraceWakes  bool
	testDropHealthWakes bool
	testDropPlaceWakes  bool
	testDropLeaseWakes  bool

	// testDisableMemo forces cross-node memo sharing off in runEvent.
	// The obs-overhead gate sets it on the nil-sink baseline so both
	// arms run the same engine policy: attaching a sink already disables
	// memo sharing by design (per-node metrics must track per-node
	// decisions), and the gate bounds instrumentation cost, not that
	// documented policy trade. Never set outside tests.
	testDisableMemo bool

	// evActive counts the seconds the last runEvent actually evaluated
	// (as opposed to replicating); see EventActiveSeconds.
	evActive int
}

// EventActiveSeconds reports how many simulated seconds the last
// EngineEvent run evaluated node-by-node rather than replicating from a
// fixed point — the engine's work metric. Zero before any event run;
// equal to the horizon when nothing could be skipped.
func (c *Cluster) EventActiveSeconds() int { return c.evActive }

// stagingJournalCap bounds each node's staging journal. A node emits at
// most a handful of events per interval and the staging ring is drained
// every interval, so a small ring can never drop.
const stagingJournalCap = 64

// NodeID renders the canonical node identity used in coordinator
// reports, journal events and per-node metric labels.
func NodeID(i int) string { return fmt.Sprintf("node-%03d", i) }

// SetObs attaches a decision-trail sink to the fleet (nil detaches).
// Every controller that implements obs.Instrumentable receives a
// per-node child sink — same metrics registry, own staging journal — so
// journal appends never race across the parallel node stepping. The
// staging journals are drained onto sink's journal serially in
// node-index order each interval (see drainNode), which keeps the
// global event sequence byte-identical at any stepping Parallelism.
func (c *Cluster) SetObs(sink *obs.Sink) {
	c.obs = sink
	c.nodeSinks, c.drained, c.spanDrained, c.capGauges = nil, nil, nil, nil
	c.evictCtr, c.readmitCtr, c.grantCtr, c.faultCtr, c.recoveryCtr = nil, nil, nil, nil, nil
	c.migrCtr, c.planCtr = nil, nil
	c.tlBE, c.tlQoS, c.tlPower, c.tlCap, c.tlSlack, c.tlMigr = nil, nil, nil, nil, nil, nil
	if sink == nil {
		for _, ctrl := range c.Ctrls {
			if in, ok := ctrl.(obs.Instrumentable); ok {
				in.SetObs(nil)
			}
		}
		return
	}
	n := len(c.Nodes)
	c.nodeSinks = make([]*obs.Sink, n)
	c.drained = make([]int64, n)
	c.spanDrained = make([]int64, n)
	c.capGauges = make([]*obs.Gauge, n)
	for i := 0; i < n; i++ {
		ns := sink.ForNode(NodeID(i), stagingJournalCap)
		c.nodeSinks[i] = ns
		c.capGauges[i] = ns.NodeGauge("fleet_node_cap_watts")
		c.capGauges[i].Set(float64(c.caps[i]))
		if in, ok := c.Ctrls[i].(obs.Instrumentable); ok {
			in.SetObs(ns)
		}
	}
	c.evictCtr = sink.Counter("fleet_evictions_total")
	c.readmitCtr = sink.Counter("fleet_readmissions_total")
	c.grantCtr = sink.Counter("fleet_cap_grants_total")
	c.faultCtr = sink.Counter("fleet_faults_injected_total")
	c.recoveryCtr = sink.Counter("fleet_coord_recoveries_total")
	c.migrCtr = sink.Counter("fleet_migrations_total")
	c.planCtr = sink.Counter("fleet_placement_plans_total")
	if sink.Timeline != nil {
		c.tlBE = sink.Series("fleet_be_ups")
		c.tlQoS = sink.Series("fleet_qos")
		c.tlPower = sink.Series("fleet_power_w")
		c.tlCap = sink.Series("fleet_cap_w")
		c.tlSlack = sink.Series("fleet_slack_w")
		c.tlMigr = sink.Series("fleet_migrations")
	}
}

// New builds a fleet of n nodes. mkCtrl builds one controller per node
// (they must not be shared — controllers carry state).
func New(n int, ls, be workload.Profile, budget power.Watts,
	policy DispatchPolicy, seed int64, mkCtrl func(i int) control.Controller) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node")
	}
	c := &Cluster{Budget: budget, Policy: policy, LS: ls, rng: rand.New(rand.NewSource(seed))}
	// One latency-solve cache for the whole fleet: nodes offered the same
	// arrival rate at the same configuration share a single analytic
	// solve per interval. Solves are pure functions of the queue
	// parameters, so sharing cannot change any node's results.
	lat := queueing.NewCache()
	for i := 0; i < n; i++ {
		node := sim.NewNode(ls, be, seed+int64(i)*7919)
		node.Latency = lat
		if err := node.Apply(hw.SoloLS(node.Spec)); err != nil {
			return nil, err
		}
		c.Nodes = append(c.Nodes, node)
		c.Ctrls = append(c.Ctrls, mkCtrl(i))
		c.caps = append(c.caps, budget)
	}
	return c, nil
}

// Caps returns a copy of the per-node power caps currently in force.
func (c *Cluster) Caps() []power.Watts {
	return append([]power.Watts(nil), c.caps...)
}

// InjectFaults materializes one deterministic fault plan per node from
// spec, deriving every per-node seed from the cluster's injected rng so
// the whole chaos schedule is a pure function of the cluster seed.
func (c *Cluster) InjectFaults(spec faults.Spec, durationS int) {
	c.Injectors = make([]*faults.Injector, len(c.Nodes))
	for i := range c.Nodes {
		planSeed := c.rng.Int63()
		noiseSeed := c.rng.Int63()
		c.Injectors[i] = faults.NewInjector(faults.New(spec, planSeed, durationS), noiseSeed)
	}
}

// SetFaultPlans installs explicit per-node plans (nil entries run that
// node clean) — the scripted-scenario entry point of the test battery.
// Plans beyond len(Nodes) are ignored; missing ones are nil.
func (c *Cluster) SetFaultPlans(plans ...*faults.Plan) {
	c.Injectors = make([]*faults.Injector, len(c.Nodes))
	for i := range c.Nodes {
		if i < len(plans) && plans[i] != nil {
			c.Injectors[i] = faults.NewInjector(plans[i], c.rng.Int63())
		}
	}
}

// injector returns node i's injector, or nil when the fleet runs clean.
func (c *Cluster) injector(i int) *faults.Injector {
	if i < len(c.Injectors) {
		return c.Injectors[i]
	}
	return nil
}

// IntervalReport aggregates one cluster interval.
type IntervalReport struct {
	Time float64
	// TotalQPS is the cluster-wide offered load; QoSFrac the
	// query-weighted in-target fraction.
	TotalQPS float64
	QoSFrac  float64
	// BEThroughputUPS is summed best-effort progress.
	BEThroughputUPS float64
	// PowerW is summed true node power; OverloadedNodes counts nodes
	// above their budget this interval.
	PowerW          float64
	OverloadedNodes int
	// CapSpreadW is max − min of the per-node caps in force (0 unless a
	// coordinator has moved watts between nodes).
	CapSpreadW float64
}

// Result aggregates a cluster run.
type Result struct {
	Intervals []IntervalReport
	// QoSRate is the fleet-wide query-weighted guarantee rate.
	QoSRate float64
	// MeanBEThroughputUPS is the fleet's average best-effort rate.
	MeanBEThroughputUPS float64
	// MeanPowerW is the fleet's average total draw; EnergyKJ the total
	// energy; WorkPerKJ the best-effort units bought per kilojoule.
	MeanPowerW float64
	EnergyKJ   float64
	WorkPerKJ  float64
	// LostQueries is the offered load dispatched to crashed nodes (each
	// such query counts as a QoS violation in QoSRate).
	LostQueries float64
	// Health summarizes failure-detector activity; Faults tallies the
	// injected faults across the fleet (both zero on clean runs).
	Health HealthStats
	Faults faults.Counters
	// Coordinated marks runs stepped under a power-budget coordinator;
	// Coord tallies the grant loop (zero otherwise).
	Coordinated bool
	Coord       CoordStats
	// Placed marks runs stepped under the placement engine; Place
	// tallies its planning and migration activity (zero otherwise).
	Placed bool
	Place  PlacementStats
}

// Summary renders a stable fixed-precision digest of the run for
// golden-file comparison and determinism checks: headline metrics, the
// fault and health tallies, and every tenth interval's trajectory. Any
// semantic drift in the simulator, dispatcher or fault layer shows up as
// a diff against the checked-in fixture.
func (r Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "intervals %d\n", len(r.Intervals))
	fmt.Fprintf(&b, "qos_rate %.6f\n", r.QoSRate)
	fmt.Fprintf(&b, "be_ups %.4f\n", r.MeanBEThroughputUPS)
	fmt.Fprintf(&b, "mean_power_w %.4f\n", r.MeanPowerW)
	fmt.Fprintf(&b, "energy_kj %.4f\n", r.EnergyKJ)
	fmt.Fprintf(&b, "work_per_kj %.4f\n", r.WorkPerKJ)
	fmt.Fprintf(&b, "lost_queries %.2f\n", r.LostQueries)
	fmt.Fprintf(&b, "health evictions %d readmissions %d unhealthy_intervals %d\n",
		r.Health.Evictions, r.Health.Readmissions, r.Health.UnhealthyNodeIntervals)
	fmt.Fprintf(&b, "faults %s\n", r.Faults)
	if r.Coordinated {
		fmt.Fprintf(&b, "coord epochs %d drops %d outages %d fallbacks %d moved_w %.2f\n",
			r.Coord.Epochs, r.Coord.DroppedReports, r.Coord.OutageEpochs,
			r.Coord.Fallbacks, r.Coord.MovedW)
		if r.Coord.CrashEpochs+r.Coord.Recoveries > 0 {
			fmt.Fprintf(&b, "coord_crash epochs %d recoveries %d\n",
				r.Coord.CrashEpochs, r.Coord.Recoveries)
		}
		if r.Coord.Leased {
			fmt.Fprintf(&b, "coord_lease degraded %d exits %d stale_rejects %d ratchet_w %.2f\n",
				r.Coord.DegradedEpisodes, r.Coord.DegradedExits,
				r.Coord.StaleGrantRejects, r.Coord.LeaseRatchetW)
		}
		if r.Coord.Net != (coordinator.NetStats{}) {
			fmt.Fprintf(&b, "coord_net part_out %d part_in %d dropped %d delayed %d late %d dup %d reorder %d\n",
				r.Coord.Net.PartitionedOut, r.Coord.Net.PartitionedIn, r.Coord.Net.Dropped,
				r.Coord.Net.Delayed, r.Coord.Net.DeliveredLate, r.Coord.Net.Duplicated,
				r.Coord.Net.Reordered)
		}
	}
	if r.Placed {
		fmt.Fprintf(&b, "placement jobs %d plans %d moves %d starved %d consolidate %d warmup_lost_ups %.2f\n",
			r.Place.Jobs, r.Place.Plans, r.Place.Moves, r.Place.StarvedMoves,
			r.Place.ConsolidateMoves, r.Place.WarmupLostUPS)
	}
	for i, iv := range r.Intervals {
		if i%10 != 0 {
			continue
		}
		fmt.Fprintf(&b, "t=%04.0f qps %.1f qos %.4f be %.2f pw %.2f over %d",
			iv.Time, iv.TotalQPS, iv.QoSFrac, iv.BEThroughputUPS, iv.PowerW, iv.OverloadedNodes)
		if r.Coordinated {
			fmt.Fprintf(&b, " cap %.1f", iv.CapSpreadW)
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// stepOutcome is what one node's fan-out task hands back to the serial
// merge: the dispatched share, whether the node was down, and the
// (possibly perturbed) interval telemetry.
type stepOutcome struct {
	q       float64
	crashed bool
	st      sim.IntervalStats
	// held records that the controller returned the observation's config
	// unchanged, so no actuation was attempted — one of the event
	// engine's fixed-point conditions.
	held bool
}

// stepNode advances node i through simulated second step with dispatched
// load q. It touches exclusively node-i state — the node's simulator,
// its controller and its injector — which is what makes the per-interval
// fan-out in Run safe: no two tasks share any mutable state, and all
// fleet-level reductions happen in Run's serial merge.
func (c *Cluster) stepNode(i, step int, t, q float64) stepOutcome {
	node := c.Nodes[i]
	inj := c.injector(i)

	if inj.Crashed(step) {
		// The node is down: its dispatched share is lost and its
		// telemetry goes dark (the 0 W reading is what the failure
		// detector keys on).
		return stepOutcome{q: q, crashed: true,
			st: sim.IntervalStats{Time: t, QPS: q, Faults: inj.Flags(step)}}
	}
	if step > 0 && inj.CrashedAt(step-1) {
		// Reboot: drained queue, boot configuration.
		node.ResetQueue()
		_ = node.Apply(hw.SoloLS(node.Spec))
	}

	st := node.Step(t, q)
	if inj != nil {
		st.Power = inj.PerturbPower(step, st.Power)
		st.P95 = inj.PerturbP95(step, st.P95)
		st.Faults = inj.Flags(step)
	}
	ob := control.Observation{
		Time: t, QPS: st.QPS, P95: st.P95,
		Target: c.LS.QoSTargetS,
		Power:  st.Power, Budget: c.caps[i],
		BEThroughput: st.BEThroughputUPS, Config: st.Config,
	}
	next := c.Ctrls[i].Decide(ob)
	if next != st.Config {
		inj.Actuate(step, st.Config, next, node.Apply)
	}
	return stepOutcome{q: q, st: st, held: next == st.Config}
}

// Run drives the fleet for duration seconds under a cluster-wide load
// trace (fraction of n×PeakQPS). Crashed nodes drop their dispatched
// share (those queries count as violated) until the failure detector
// evicts them and the dispatch policies renormalize the survivors'
// shares; recovered nodes re-admit after a backoff probation.
//
// Each simulated second the fleet is stepped on Parallelism workers:
// shares are computed up front from the previous interval's states, the
// per-node work (simulator physics, telemetry perturbation, controller
// decision, actuation) fans out, and the failure detector plus every
// fleet-level accumulator then runs serially in node-index order over
// the collected outcomes — floating-point reductions see operands in
// exactly the serial program's order, so the result is byte-identical
// at any worker count.
func (c *Cluster) Run(tr workload.Trace, durationS int) Result {
	if c.Engine == EngineEvent {
		return c.runEvent(tr, durationS)
	}
	return c.runStep(tr, durationS)
}

// runStep is the per-second reference engine: every node is stepped at
// every simulated second. runEvent (engine.go) must stay byte-identical
// to it, which is why the serial merge and the run finalization live in
// mergeSecond and finish, shared by both engines — floating-point
// reductions see operands in exactly the same order either way.
func (c *Cluster) runStep(tr workload.Trace, durationS int) Result {
	n := len(c.Nodes)
	opt := c.Health.withDefaults()
	states := make([]NodeState, n)
	health := make([]nodeHealth, n)
	for i := range states {
		states[i].Healthy = true
	}
	outs := make([]stepOutcome, n)
	shareBuf := make([]float64, n)
	fastShares, hasFast := c.Policy.(sharesInto)

	var res Result
	res.Intervals = make([]IntervalReport, 0, durationS)
	var wOK, wQ, sumBE, sumPW float64
	for step := 0; step < durationS; step++ {
		t := float64(step + 1)
		total := tr(t) * c.LS.PeakQPS * float64(n)

		shares := shareBuf
		if hasFast {
			fastShares.SharesInto(states, shareBuf)
		} else {
			shares = c.Policy.Shares(states)
		}
		var norm float64
		for _, s := range shares {
			norm += s
		}

		// Fan out: one task per node, results into index-i slots.
		pool.ForEach(c.Parallelism, n, func(i int) {
			q := 0.0
			if norm > 0 {
				q = total * shares[i] / norm
			}
			outs[i] = c.stepNode(i, step, t, q)
		})

		rep, okQ := c.mergeSecond(step, t, total, outs, states, health, opt, &res)
		wOK += okQ
		wQ += total
		sumBE += rep.BEThroughputUPS
		sumPW += rep.PowerW
		res.Intervals = append(res.Intervals, rep)
	}
	c.finish(&res, wOK, wQ, sumBE, sumPW, durationS)
	return res
}

// mergeSecond is the serial per-interval reduction both engines share:
// failure detection, journal draining, the fleet accumulators and the
// coordination epoch, all in node-index order over the collected
// outcomes. It returns the interval report and the query-weighted
// in-target load okQ.
func (c *Cluster) mergeSecond(step int, t, total float64, outs []stepOutcome,
	states []NodeState, health []nodeHealth, opt HealthOptions, res *Result) (IntervalReport, float64) {
	rep := IntervalReport{Time: t, TotalQPS: total}
	var okQ float64
	for i := range outs {
		o := &outs[i]
		if o.crashed {
			res.LostQueries += o.q
			states[i].Last = o.st
			wasHealthy := states[i].Healthy
			states[i].Healthy = health[i].observe(true, opt, &res.Health)
			if !states[i].Healthy {
				res.Health.UnhealthyNodeIntervals++
			}
			c.drainNode(i, t, wasHealthy, states[i].Healthy)
			// A warming node's clock keeps draining while it is down.
			_ = c.chargeWarmup(i, 0, res)
			continue
		}
		st := o.st
		states[i].Last = st
		wasHealthy := states[i].Healthy
		states[i].Healthy = health[i].observe(st.Power <= 0, opt, &res.Health)
		if !states[i].Healthy {
			res.Health.UnhealthyNodeIntervals++
		}
		c.drainNode(i, t, wasHealthy, states[i].Healthy)
		if c.obs != nil && o.held {
			// The node settled: close the causal window so later decisions
			// no longer chain under a long-gone cap grant or migration.
			// Idempotent, so the event engine's replicated (all-held)
			// seconds skipping this clear cannot diverge.
			c.nodeSinks[i].SetSpanContext(obs.SpanRef{})
		}
		okQ += st.QPS * st.QoSFrac
		rep.BEThroughputUPS += c.chargeWarmup(i, st.BEThroughputUPS, res)
		rep.PowerW += float64(st.TruePower)
		if st.TruePower > c.caps[i] {
			rep.OverloadedNodes++
		}
	}
	if total > 0 {
		rep.QoSFrac = okQ / total
	} else {
		rep.QoSFrac = 1
	}

	// Fleet coordination: at epoch boundaries every node reports its
	// slack telemetry and applies the cap granted back. This runs in
	// the serial section, in node-index order, so the grant schedule
	// is identical at every stepping parallelism.
	if c.Coord != nil && c.Coord.Transport != nil {
		epochS := c.Coord.epochS()
		if (step+1)%epochS == 0 {
			c.exchangeGrants((step+1)/epochS, states, res)
		}
		if c.leases != nil {
			c.applyRatchet(t, res)
		}
		lo, hi := c.caps[0], c.caps[0]
		for _, w := range c.caps {
			lo = min(lo, w)
			hi = max(hi, w)
		}
		rep.CapSpreadW = float64(hi - lo)
	}
	if c.Invariants != nil {
		c.observeInvariants(t)
	}

	// Placement epochs run after coordination so the planner sees the
	// caps in force for the next interval. Same serial-section argument:
	// the move schedule is identical at every stepping parallelism.
	if c.Place != nil && c.Place.Planner != nil {
		if epochS := c.Place.epochS(); (step+1)%epochS == 0 {
			c.exchangeMoves((step+1)/epochS, step, states, res)
		}
	}
	c.recordInterval(rep, res)
	return rep, okQ
}

// recordInterval feeds the fleet timeline series for one simulated
// second. Called from mergeSecond (both engines' active seconds) and
// from runEvent's replication loop, so the recorded timeline is a pure
// function of the interval sequence — byte-identical across engines
// and stepping parallelism.
func (c *Cluster) recordInterval(rep IntervalReport, res *Result) {
	if c.tlBE == nil {
		return
	}
	t := rep.Time
	c.tlBE.Observe(t, rep.BEThroughputUPS)
	c.tlQoS.Observe(t, rep.QoSFrac)
	c.tlPower.Observe(t, rep.PowerW)
	var capSum float64
	for _, w := range c.caps {
		capSum += float64(w)
	}
	c.tlCap.Observe(t, capSum)
	c.tlSlack.Observe(t, capSum-rep.PowerW)
	c.tlMigr.Observe(t, float64(res.Place.Moves))
}

// finish folds the run accumulators into the Result — shared by both
// engines so the final divisions see bit-equal operands.
func (c *Cluster) finish(res *Result, wOK, wQ, sumBE, sumPW float64, durationS int) {
	for i := range c.Injectors {
		if c.Injectors[i] != nil {
			res.Faults.Add(c.Injectors[i].C)
		}
	}
	if total := res.Faults.Total(); total > 0 {
		c.faultCtr.Add(int64(total))
	}
	if c.Place != nil {
		res.Placed = true
		res.Place.Jobs = len(c.Place.Jobs)
	}
	if res.Coordinated {
		if nc, ok := c.Coord.Transport.(*coordinator.NetChaos); ok {
			res.Coord.Net = nc.Stats()
		}
	}

	if wQ > 0 {
		res.QoSRate = wOK / wQ
	} else {
		res.QoSRate = 1
	}
	d := float64(max(1, durationS))
	res.MeanBEThroughputUPS = sumBE / d
	res.MeanPowerW = sumPW / d
	res.EnergyKJ = sumPW / 1e3
	if res.EnergyKJ > 0 {
		res.WorkPerKJ = sumBE / res.EnergyKJ
	}
}

// restartCoordinator runs the Coordination's Restart hook, normalizing
// a nil hook or a nil transport into an error so exchangeGrants has one
// failure path.
func restartCoordinator(cd *Coordination) (coordinator.Transport, coordinator.RecoveryInfo, error) {
	if cd.Restart == nil {
		return nil, coordinator.RecoveryInfo{}, fmt.Errorf("cluster: coordinator kill scheduled without a Restart hook")
	}
	tr, info, err := cd.Restart()
	if err != nil {
		return nil, info, err
	}
	if tr == nil {
		return nil, info, fmt.Errorf("cluster: Restart returned no transport")
	}
	return tr, info, nil
}

// drainNode moves node i's staged decision events and spans onto the
// fleet journal/tracer and journals failure-detector transitions. It
// runs only from Run's serial merge, in node-index order, so the fleet
// journal's and trace's sequence numbers are a pure function of the
// seeded decision sequence — independent of the stepping Parallelism.
func (c *Cluster) drainNode(i int, t float64, wasHealthy, healthy bool) {
	if c.obs == nil {
		return
	}
	ns := c.nodeSinks[i]
	c.drained[i] = ns.Journal.DrainTo(c.obs.Journal, c.drained[i])
	if ns.Trace != nil && c.obs.Trace != nil {
		c.spanDrained[i] = ns.Trace.DrainTo(c.obs.Trace, c.spanDrained[i])
	}
	switch {
	case wasHealthy && !healthy:
		c.evictCtr.Inc()
		c.obs.Emit(obs.Event{T: t, Node: ns.Node, Type: obs.EventNodeEvicted})
		c.obs.Span(obs.Span{Kind: obs.SpanEviction, Node: ns.Node, Start: t, End: t})
	case !wasHealthy && healthy:
		c.readmitCtr.Inc()
		c.obs.Emit(obs.Event{T: t, Node: ns.Node, Type: obs.EventNodeReadmitted})
		c.obs.Span(obs.Span{Kind: obs.SpanReadmission, Node: ns.Node, Start: t, End: t})
	}
}

// exchangeGrants runs one coordination epoch: build each node's report
// from its latest interval, submit through the transport, and apply the
// granted caps. Any node whose report is lost (chaos drop), whose epoch
// falls in a coordinator outage window, or whose submission errors keeps
// its last-granted cap — the degradation contract of DESIGN.md §10.
func (c *Cluster) exchangeGrants(epoch int, states []NodeState, res *Result) {
	res.Coordinated = true
	res.Coord.Epochs++
	cd := c.Coord
	tEpoch := float64(epoch * cd.epochS())
	// Coordinator kill windows come before everything else: a crashed
	// coordinator can neither serve grants nor suffer a mere network
	// outage. Restart fires on the first epoch past a window, standing a
	// recovered coordinator up *before* this epoch's reports go out — the
	// restarted control plane serves the same epoch it recovered in.
	if cd.Kill != nil {
		if cd.Kill.DownAt(epoch) {
			res.Coord.CrashEpochs++
			res.Coord.Fallbacks += len(c.Nodes)
			c.leaseMissAll(tEpoch, epoch, res)
			return
		}
		if cd.Kill.RestartAt(epoch) {
			tr, info, err := restartCoordinator(cd)
			if err != nil {
				// Recovery failed (or no Restart wired): the coordinator
				// stays down this epoch; nodes keep their last-granted caps.
				res.Coord.CrashEpochs++
				res.Coord.Fallbacks += len(c.Nodes)
				c.leaseMissAll(tEpoch, epoch, res)
				return
			}
			cd.Transport = tr
			res.Coord.Recoveries++
			if c.obs != nil {
				c.recoveryCtr.Inc()
				c.obs.Emit(obs.Event{T: float64(epoch * cd.epochS()),
					Type: obs.EventRecoveryCompleted, Reason: info.Reason,
					Epoch: epoch, Value: float64(info.ReplayedReports)})
			}
		}
	}
	if cd.Chaos.Outage(epoch) {
		res.Coord.OutageEpochs++
		res.Coord.Fallbacks += len(c.Nodes)
		c.leaseMissAll(tEpoch, epoch, res)
		return
	}
	// The epoch-close span roots this epoch's causal chain; every cap
	// change that lands below links back to it, and the receiving node's
	// sink carries the grant ref forward so the governor/search spans the
	// grant provokes chain under it end to end.
	epochRef := c.obs.ChildSpan(obs.Span{Kind: obs.SpanCoordEpoch,
		Start: tEpoch, End: tEpoch, Epoch: epoch}, obs.SpanRef{})
	target := c.LS.QoSTargetS
	for i := range c.Nodes {
		if cd.Chaos.Dropped(epoch, i) {
			res.Coord.DroppedReports++
			res.Coord.Fallbacks++
			c.leaseMiss(i, tEpoch, epoch, res)
			continue
		}
		last := states[i].Last
		p95 := last.P95
		if math.IsNaN(p95) || math.IsInf(p95, 0) || target <= 0 {
			// Blind latency telemetry: nothing arbitration-worthy to say.
			// From the lease's point of view a withheld report is a missed
			// renewal all the same — the coordinator will expire the grant
			// either way, so the node must start degrading toward its floor.
			res.Coord.Fallbacks++
			c.leaseMiss(i, tEpoch, epoch, res)
			continue
		}
		r := coordinator.NodeReport{
			Schema:          coordinator.Schema,
			NodeID:          NodeID(i),
			Epoch:           epoch,
			Slack:           (target - p95) / target,
			P95S:            p95,
			PowerW:          float64(last.Power),
			CapW:            float64(c.caps[i]),
			BEThroughputUPS: last.BEThroughputUPS,
			Healthy:         states[i].Healthy,
		}
		g, err := cd.Transport.Report(context.Background(), r)
		if err != nil {
			res.Coord.Fallbacks++
			c.leaseMiss(i, tEpoch, epoch, res)
			continue
		}
		if g.LeaseEpochs > 0 {
			c.ensureLeases()
			lt := &c.leases[i]
			wasDegraded, since := lt.Degraded(), lt.DegradedSince()
			lease := control.Lease{CapW: power.Watts(g.CapW), FloorW: power.Watts(g.FloorW),
				Token: g.Token, ExpiresAtS: float64((epoch + g.LeaseEpochs) * cd.epochS())}
			if !lt.Renew(lease) {
				// Fencing: a grant carrying an older token than one already
				// accepted is a pre-partition straggler; applying it could
				// resurrect a cap the coordinator has since reclaimed.
				res.Coord.StaleGrantRejects++
				res.Coord.Fallbacks++
				c.leaseMiss(i, tEpoch, epoch, res)
				continue
			}
			res.Coord.Leased = true
			if wasDegraded {
				res.Coord.DegradedExits++
				if c.obs != nil {
					c.obs.Emit(obs.Event{T: tEpoch, Node: r.NodeID,
						Type: obs.EventDegradedExit, Epoch: epoch, Value: g.CapW})
					c.obs.Span(obs.Span{Kind: obs.SpanDegraded, Node: r.NodeID,
						Start: since, End: tEpoch, Epoch: epoch, Value: g.FloorW})
				}
			}
		}
		if next := power.Watts(g.CapW); g.CapW > 0 && next != c.caps[i] {
			res.Coord.MovedW += math.Abs(g.CapW - float64(c.caps[i]))
			c.caps[i] = next
			if cs, ok := c.Ctrls[i].(control.CapSetter); ok {
				cs.SetBudget(next)
			}
			if c.obs != nil {
				c.grantCtr.Inc()
				c.capGauges[i].Set(g.CapW)
				c.obs.Emit(obs.Event{T: tEpoch, Node: r.NodeID,
					Type: obs.EventCapGranted, Epoch: epoch, Value: g.CapW})
				ref := c.obs.ChildSpan(obs.Span{Kind: obs.SpanCapGrant, Node: r.NodeID,
					Start: tEpoch, End: tEpoch, Epoch: epoch, Value: g.CapW}, epochRef)
				c.nodeSinks[i].SetSpanContext(ref)
			}
		}
	}
	// Ground truth for the invariant harness: the status fetch is
	// out-of-band observation, not node traffic (NetChaos passes it
	// through), and is skipped whole on killed/outage epochs above — a
	// down coordinator answers nothing.
	if c.Invariants != nil {
		if st, err := cd.Transport.Status(context.Background()); err == nil {
			c.Invariants.ObserveStatus(tEpoch, st)
		}
	}
}

// ensureLeases allocates the per-node lease trackers on the first
// leased grant. Allocation happens inside the serial merge, so the
// lease state is a pure function of the grant sequence.
func (c *Cluster) ensureLeases() {
	if c.leases != nil {
		return
	}
	c.leases = make([]control.LeaseTracker, len(c.Nodes))
	c.ratcheted = make([]bool, len(c.Nodes))
	if c.Coord.RatchetSteps > 0 {
		for i := range c.leases {
			c.leases[i].RatchetSteps = c.Coord.RatchetSteps
		}
	}
}

// leaseMiss records a failed renewal for node i at time t. The first
// miss of an episode enters autonomous degraded mode: from the next
// interval on, applyRatchet walks the node's cap down toward its lease
// floor. No-op while the node holds no lease (lease-free fleets, or a
// node partitioned away before its first grant — its boot-time static
// cap is already the even split the floor would impose).
func (c *Cluster) leaseMiss(i int, t float64, epoch int, res *Result) {
	if c.leases == nil {
		return
	}
	if c.leases[i].Miss(t) {
		res.Coord.DegradedEpisodes++
		if c.obs != nil {
			c.obs.Emit(obs.Event{T: t, Node: NodeID(i), Type: obs.EventDegradedEnter,
				Epoch: epoch, Value: float64(c.caps[i])})
		}
	}
}

// leaseMissAll records a missed renewal for every node — the whole-fleet
// failure modes (coordinator kill, outage window).
func (c *Cluster) leaseMissAll(t float64, epoch int, res *Result) {
	for i := range c.leases {
		c.leaseMiss(i, t, epoch, res)
	}
}

// applyRatchet advances every degraded node's autonomous cap descent by
// one governor interval: the cap applied at the end of second t governs
// second t+1, so it is evaluated at t+1 — by the lease expiry the node
// is exactly at its floor, meeting the coordinator's reclaim from the
// other side. Runs in the serial merge right after the coordination
// exchange; the event engine routes the resulting cap changes through
// KindLease wake-ups (engine.go).
func (c *Cluster) applyRatchet(t float64, res *Result) {
	for i := range c.leases {
		c.ratcheted[i] = false
		lt := &c.leases[i]
		if !lt.Degraded() {
			continue
		}
		w, ok := lt.CapAt(t + 1)
		if !ok || w == c.caps[i] {
			continue
		}
		res.Coord.LeaseRatchetW += math.Abs(float64(w - c.caps[i]))
		c.caps[i] = w
		c.ratcheted[i] = true
		if cs, ok := c.Ctrls[i].(control.CapSetter); ok {
			cs.SetBudget(w)
		}
		if c.obs != nil {
			c.capGauges[i].Set(float64(w))
		}
	}
}

// observeInvariants feeds the checker one second's fleet view: the caps
// in force entering second t+1 against the coordinator book recorded at
// the newest reachable epoch. Between epochs the book is stale but caps
// only move down (the ratchet), so staleness can never mask a
// violation.
func (c *Cluster) observeInvariants(t float64) {
	if cap(c.invViews) < len(c.Nodes) {
		c.invViews = make([]invariant.NodeView, len(c.Nodes))
	}
	views := c.invViews[:len(c.Nodes)]
	for i := range c.Nodes {
		v := invariant.NodeView{ID: NodeID(i), EffCapW: float64(c.caps[i])}
		if c.leases != nil {
			if lt := &c.leases[i]; lt.Active() {
				l := lt.Lease()
				v.LeaseCapW = float64(l.CapW)
				v.FloorW = float64(l.FloorW)
				v.Degraded = lt.Degraded()
				v.ExpiresAtS = l.ExpiresAtS
			}
		}
		views[i] = v
	}
	c.Invariants.CheckSecond(t, views)
}
