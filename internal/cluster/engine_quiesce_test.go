package cluster

import (
	"strings"
	"testing"

	"sturgeon/internal/faults"
	"sturgeon/internal/obs"
	"sturgeon/internal/workload"
)

// The quiescence regression battery: each wake-up category in runEvent
// exists to puncture a skip exactly when the per-second engine's
// behavior would change inside it. For every category we build a fleet
// where the interesting transition lands deep inside a quiescent
// stretch, then prove two things: the real event engine still matches
// per-second stepping byte-for-byte, and an engine with that one
// wake-up category suppressed (the testDrop* stubs — deliberately
// broken schedulers) visibly diverges. A test that only asserted the
// first half could pass vacuously if the scenario never skipped; the
// divergence half proves the skip was real and the wake-up load-bearing.

// quiesceBase is a small fleet10k variant on a single flat tread: after
// the governors settle (~a dozen seconds), nothing is active until an
// explicit wake-up fires, so every scenario below gets a long
// quiescent stretch to hide its transition in.
func quiesceBase(t *testing.T, nodes, durationS int) *Cluster {
	t.Helper()
	o := DefaultFleet10k()
	o.Nodes = nodes
	o.DurationS = durationS
	o.StepDurS = durationS
	o.Levels = []float64{0.35}
	c, err := BuildFleet10k(o)
	if err != nil {
		t.Fatal(err)
	}
	c.Parallelism = 1
	return c
}

func quiesceFlatTrace(durationS int) workload.Trace {
	return workload.Stair{Levels: []float64{0.35}, StepDurS: durationS}.Trace()
}

// runQuiesce builds the scenario fresh via build, applies the engine
// selection plus an optional stub, runs it and returns the summary.
func runQuiesce(t *testing.T, build func(t *testing.T) *Cluster, durationS int, eng Engine, stub func(*Cluster)) string {
	t.Helper()
	c := build(t)
	c.Engine = eng
	if stub != nil {
		stub(c)
	}
	return c.Run(quiesceFlatTrace(durationS), durationS).Summary()
}

// checkQuiesce asserts the two-sided property for one wake category.
func checkQuiesce(t *testing.T, build func(t *testing.T) *Cluster, durationS int, stub func(*Cluster)) {
	t.Helper()
	stepSum := runQuiesce(t, build, durationS, EngineStep, nil)
	eventSum := runQuiesce(t, build, durationS, EngineEvent, nil)
	if eventSum != stepSum {
		t.Fatalf("real event engine diverges from per-second stepping.\n--- step ---\n%s--- event ---\n%s",
			stepSum, eventSum)
	}
	brokenSum := runQuiesce(t, build, durationS, EngineEvent, stub)
	if brokenSum == stepSum {
		t.Fatalf("suppressing the wake-up category changed nothing — the scenario never exercised it:\n%s", stepSum)
	}
}

// TestQuiescenceFaultWake: a crash window opens at t=100, long after
// the fleet has settled. Without the KindFault wake-up the engine would
// keep replaying the node's healthy interval straight through its
// outage — queries that per-second stepping loses are silently served.
func TestQuiescenceFaultWake(t *testing.T) {
	const durationS = 200
	build := func(t *testing.T) *Cluster {
		c := quiesceBase(t, 4, durationS)
		c.SetFaultPlans(nil, faults.Manual(durationS,
			faults.Episode{Kind: faults.NodeCrash, Start: 100, End: 120},
		))
		return c
	}
	checkQuiesce(t, build, durationS, func(c *Cluster) { c.testDropFaultWakes = true })
}

// TestQuiescenceEpochWake: a coordinator grant moves one node's cap at
// an epoch boundary that falls inside a skip. Without the KindEpoch
// wake-up the exchange never runs — the grant is lost and the epoch
// count itself drifts.
func TestQuiescenceEpochWake(t *testing.T) {
	const durationS = 200
	build := func(t *testing.T) *Cluster {
		c := quiesceBase(t, 4, durationS)
		ft := &fakeTransport{grants: map[string]float64{"node-000": 95}}
		c.Coord = &Coordination{Transport: ft, EpochS: 60}
		return c
	}
	checkQuiesce(t, build, durationS, func(c *Cluster) { c.testDropEpochWakes = true })
}

// TestQuiescenceTraceWake: the staircase steps to a higher level
// mid-run. Without the KindTrace wake-up the engine replicates the old
// tread's intervals across the inflection — the exact bug the declared
// TraceBreaks contract exists to prevent.
func TestQuiescenceTraceWake(t *testing.T) {
	const durationS = 200
	build := func(t *testing.T) *Cluster {
		o := DefaultFleet10k()
		o.Nodes = 4
		o.DurationS = durationS
		o.StepDurS = 100
		o.Levels = []float64{0.3, 0.5}
		c, err := BuildFleet10k(o)
		if err != nil {
			t.Fatal(err)
		}
		c.Parallelism = 1
		return c
	}
	stair := workload.Stair{Levels: []float64{0.3, 0.5}, StepDurS: 100}
	stepRun := func(eng Engine, stub func(*Cluster)) string {
		c := build(t)
		c.Engine = eng
		if stub != nil {
			stub(c)
		}
		return c.Run(stair.Trace(), durationS).Summary()
	}
	stepSum := stepRun(EngineStep, nil)
	if got := stepRun(EngineEvent, nil); got != stepSum {
		t.Fatalf("real event engine diverges across the tread edge.\n--- step ---\n%s--- event ---\n%s", stepSum, got)
	}
	if got := stepRun(EngineEvent, func(c *Cluster) { c.testDropTraceWakes = true }); got == stepSum {
		t.Fatal("dropping trace wakes changed nothing — the tread edge was never inside a skip")
	}
}

// TestQuiescenceHealthWake: an evicted node recovers, settles at zero
// share, and then has to sit out a long healthy streak before
// re-admission — so the readmission flip lands deep inside a quiescent
// stretch where only the KindHealth timer can schedule it. Without the
// wake-up the node is readmitted late (at the next unrelated active
// second) and the unhealthy-interval tally drifts.
func TestQuiescenceHealthWake(t *testing.T) {
	const durationS = 400
	build := func(t *testing.T) *Cluster {
		c := quiesceBase(t, 4, durationS)
		c.Health = HealthOptions{ReadmitAfter: 60}
		c.SetFaultPlans(nil, faults.Manual(durationS,
			faults.Episode{Kind: faults.NodeCrash, Start: 100, End: 115},
		))
		return c
	}
	checkQuiesce(t, build, durationS, func(c *Cluster) { c.testDropHealthWakes = true })
}

// TestReadmissionTimingEngineIndependent pins the eviction/readmission
// timeline itself (not just the aggregate summary): the journal's
// evict/readmit events must fire at identical simulation times under
// both engines, including the doubled backoff after a repeat eviction.
// This is the regression fence for the old per-second assumption in the
// failure detector's timers.
func TestReadmissionTimingEngineIndependent(t *testing.T) {
	const durationS = 600
	build := func(t *testing.T, sink *obs.Sink) *Cluster {
		c := quiesceBase(t, 4, durationS)
		c.Health = HealthOptions{ReadmitAfter: 30}
		c.SetFaultPlans(nil, faults.Manual(durationS,
			faults.Episode{Kind: faults.NodeCrash, Start: 100, End: 115},
			faults.Episode{Kind: faults.NodeCrash, Start: 300, End: 315},
		))
		c.SetObs(sink)
		return c
	}
	timeline := func(eng Engine) []obs.Event {
		sink := obs.New(0)
		c := build(t, sink)
		c.Engine = eng
		c.Run(quiesceFlatTrace(durationS), durationS)
		var evs []obs.Event
		for _, ev := range sink.Journal.Since(0) {
			if ev.Type == obs.EventNodeEvicted || ev.Type == obs.EventNodeReadmitted {
				evs = append(evs, ev)
			}
		}
		return evs
	}
	stepEvs := timeline(EngineStep)
	eventEvs := timeline(EngineEvent)
	if len(stepEvs) != 4 {
		t.Fatalf("expected evict/readmit/evict/readmit, got %d health events", len(stepEvs))
	}
	if len(eventEvs) != len(stepEvs) {
		t.Fatalf("engines disagree on health event count: %d vs %d", len(stepEvs), len(eventEvs))
	}
	for i := range stepEvs {
		s, e := stepEvs[i], eventEvs[i]
		if s.T != e.T || s.Type != e.Type || s.Node != e.Node {
			t.Fatalf("health event %d differs: step %s %s t=%.0f vs event %s %s t=%.0f",
				i, s.Type, s.Node, s.T, e.Type, e.Node, e.T)
		}
	}
	// The second readmission must carry the doubled backoff: the healthy
	// streak required after the repeat eviction is 2×ReadmitAfter.
	gap1 := stepEvs[1].T - 116 // first recovery second
	gap2 := stepEvs[3].T - 316
	if gap2 < 2*gap1-1 || !strings.HasPrefix(stepEvs[1].Type, "node_readmit") {
		t.Fatalf("backoff not doubled: first readmit %.0f s after recovery, second %.0f s", gap1, gap2)
	}
}
