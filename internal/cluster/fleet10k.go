package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"sturgeon/internal/control"
	"sturgeon/internal/hw"
	"sturgeon/internal/power"
	"sturgeon/internal/queueing"
	"sturgeon/internal/sim"
	"sturgeon/internal/workload"
)

// Fleet10kOptions pins the datacenter-scale diurnal scenario: a large
// homogeneous fleet of governor-managed quiet nodes riding a staircase
// day/night load. Built for the event engine — the nodes are
// deterministic and identical, so between workload inflections the
// whole fleet settles into a fixed point the engine replicates in O(1)
// per second, and the few active seconds after each inflection share
// one representative node-step per memo class. Per-second stepping of
// the default scenario would take over an hour (10k nodes × 86 400 s at
// ~150 µs a step); the event engine completes it in seconds.
type Fleet10kOptions struct {
	// Nodes is the fleet size; DurationS the horizon in seconds.
	Nodes     int
	DurationS int
	// StepDurS is the staircase tread width; Levels the per-tread load
	// fractions (defaults model a 24-hour diurnal at hourly treads).
	StepDurS int
	Levels   []float64
	// CapW is the static per-node power cap. The default is generous
	// enough that governors settle at full best-effort frequency instead
	// of hunting along the cap boundary.
	CapW float64
	Seed int64
}

// DefaultFleet10k is the pinned 10 000-node day: hourly load treads on
// a cosine-shaped diurnal between 25 % and 55 % of fleet peak.
func DefaultFleet10k() Fleet10kOptions {
	levels := make([]float64, 24)
	for h := range levels {
		phase := 2 * math.Pi * float64(h) / 24
		levels[h] = math.Round((0.40-0.15*math.Cos(phase))*1e3) / 1e3
	}
	return Fleet10kOptions{
		Nodes:     10_000,
		DurationS: 86_400,
		StepDurS:  3_600,
		Levels:    levels,
		CapW:      115,
		Seed:      20260808,
	}
}

// Stair returns the scenario's staircase (levels + declared breaks).
func (o Fleet10kOptions) Stair() workload.Stair {
	return workload.Stair{Levels: o.Levels, StepDurS: o.StepDurS}
}

// Trace returns the scenario's load trace.
func (o Fleet10kOptions) Trace() workload.Trace { return o.Stair().Trace() }

// BuildFleet10k materializes the scenario on the event engine:
// noiseless interference-free nodes (the dedicated-cluster environment,
// and the precondition for replaying an interval without desyncing any
// rng stream), one governor per node, round-robin dispatch, and the
// staircase's breakpoints declared as TraceBreaks. Run it with
// c.Run(o.Trace(), o.DurationS); set c.Engine = EngineStep to cross-check
// against per-second stepping on small variants.
func BuildFleet10k(o Fleet10kOptions) (*Cluster, error) {
	if o.Nodes <= 0 || o.DurationS <= 0 || len(o.Levels) == 0 || o.CapW <= 0 {
		return nil, fmt.Errorf("cluster: fleet10k needs positive nodes, duration, cap and at least one level")
	}
	ls, be := workload.Memcached(), workload.Raytrace()
	c := &Cluster{
		Budget: power.Watts(o.CapW),
		Policy: RoundRobin{},
		LS:     ls,
		rng:    rand.New(rand.NewSource(o.Seed)),
		Engine: EngineEvent,
	}
	c.TraceBreaks = o.Stair().BreakSteps(o.DurationS)
	// Boot split: LS-heavy at the BE frequency floor, under the cap, so
	// governors climb toward their fixed point instead of shedding.
	split := hw.Config{
		LS: hw.Alloc{Cores: 12, Freq: 2.0, LLCWays: 12},
		BE: hw.Alloc{Cores: 8, Freq: 1.2, LLCWays: 8},
	}
	// All 10k nodes run the same workload on the same stair trace: a
	// shared latency cache collapses each interval's analytic solves to
	// one per distinct (load, config) pair fleet-wide.
	lat := queueing.NewCache()
	for i := 0; i < o.Nodes; i++ {
		node := sim.QuietNode(ls, be, o.Seed+int64(i)*7919)
		node.Latency = lat
		if err := node.Apply(split); err != nil {
			return nil, err
		}
		c.Nodes = append(c.Nodes, node)
		c.Ctrls = append(c.Ctrls, control.NewGovernor(hw.DefaultSpec(), power.Watts(o.CapW)))
		c.caps = append(c.caps, power.Watts(o.CapW))
	}
	return c, nil
}
