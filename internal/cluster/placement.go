package cluster

import (
	"fmt"

	"sturgeon/internal/hw"
	"sturgeon/internal/obs"
	"sturgeon/internal/placement"
	"sturgeon/internal/workload"
)

// PlacedJob is one BE application the placement engine schedules across
// the fleet.
type PlacedJob struct {
	ID string
	BE workload.Profile
}

// Placement wires the fleet to the placement and migration engine
// (internal/placement): the migration planner runs every EpochS
// intervals inside Run's serial merge — exactly like coordination
// epochs — so the whole move schedule is byte-identical at any
// stepping Parallelism and across both engines. A freshly migrated BE
// earns nothing for WarmupS seconds on its new node (cold caches,
// state transfer), which is the per-move cost the planner's hysteresis
// must overcome.
type Placement struct {
	// Planner plans migrations at epoch boundaries; nil runs the fleet
	// with a fixed assignment (the random-pairing baseline keeps
	// Cluster.Place nil entirely).
	Planner *placement.Planner
	// EpochS is the planning period in intervals (default 30).
	EpochS int
	// WarmupS is the per-move warm-up penalty in intervals.
	WarmupS int
	// BEAlloc is the core/way/frequency template a migrated job is
	// granted on arrival (the governor climbs frequency from there).
	BEAlloc hw.Alloc
	// Jobs are the fleet's BE applications, indexed as in the planner.
	Jobs []PlacedJob

	host       []int  // node → hosted job, -1 idle
	warm       []int  // node → remaining warm-up seconds
	suppressed []bool // node earned nothing this second (warming)
	movedAt    []int  // node → step last touched by a move, -1 never
	snaps      []placement.NodeSnap
}

func (p *Placement) epochS() int {
	if p.EpochS <= 0 {
		return 30
	}
	return p.EpochS
}

// SetAssignment installs the initial job→node mapping over an n-node
// fleet (the solver's Assignment.NodeOf). It only records bookkeeping —
// the caller is responsible for having applied the matching node
// configurations and BE profiles.
func (p *Placement) SetAssignment(nodeOf []int, n int) error {
	p.host = make([]int, n)
	p.warm = make([]int, n)
	p.suppressed = make([]bool, n)
	p.movedAt = make([]int, n)
	p.snaps = make([]placement.NodeSnap, n)
	for i := range p.host {
		p.host[i] = -1
		p.movedAt[i] = -1
	}
	for j, node := range nodeOf {
		if node < 0 {
			continue
		}
		if node >= n {
			return fmt.Errorf("cluster: job %d assigned to node %d of %d", j, node, n)
		}
		if other := p.host[node]; other >= 0 {
			return fmt.Errorf("cluster: node %d assigned jobs %d and %d", node, other, j)
		}
		p.host[node] = j
	}
	return nil
}

// HostOf returns a copy of the node→job mapping currently in force.
func (p *Placement) HostOf() []int { return append([]int(nil), p.host...) }

// PlacementStats tallies the placement engine's activity over a run.
type PlacementStats struct {
	// Jobs is the managed BE job count; Plans the planner epochs run.
	Jobs, Plans int
	// Moves counts applied migrations, split by reason.
	Moves, StarvedMoves, ConsolidateMoves int
	// WarmupLostUPS is the BE throughput forfeited to warm-up penalties.
	WarmupLostUPS float64
}

// chargeWarmup applies node i's warm-up penalty for the current second:
// a warming node's BE progress is forfeited (accumulated into the
// stats), and the suppression flag keeps the event engine from treating
// the node as quiescent while its accounting differs from steady state.
// It returns the node's creditable BE throughput.
func (c *Cluster) chargeWarmup(i int, beUPS float64, res *Result) float64 {
	p := c.Place
	if p == nil {
		return beUPS
	}
	if p.warm[i] > 0 {
		p.warm[i]--
		p.suppressed[i] = true
		res.Place.WarmupLostUPS += beUPS
		return 0
	}
	p.suppressed[i] = false
	return beUPS
}

// exchangeMoves runs one placement epoch from the serial merge: snapshot
// the fleet, plan, and apply each move (validating conservation against
// the live host table).
func (c *Cluster) exchangeMoves(epoch, step int, states []NodeState, res *Result) {
	p := c.Place
	for i := range c.Nodes {
		p.snaps[i] = placement.NodeSnap{
			QPS:     states[i].Last.QPS,
			CapW:    c.caps[i],
			PowerW:  states[i].Last.Power,
			Healthy: states[i].Healthy,
			Job:     p.host[i],
			Warm:    p.warm[i],
		}
	}
	moves := p.Planner.Plan(epoch, p.snaps)
	res.Place.Plans++
	// The solve span roots this epoch's migration chain; each applied
	// move links back to it (the journal keeps its historical order:
	// migrations first, then the solve summary event).
	solveRef := c.obs.ChildSpan(obs.Span{Kind: obs.SpanPlacementSolve,
		Start: float64(step + 1), End: float64(step + 1), Epoch: epoch}, obs.SpanRef{})
	applied := 0
	var gain float64
	for _, m := range moves {
		if !c.applyMove(m, float64(step+1), epoch, step, solveRef) {
			continue
		}
		applied++
		gain += m.GainUPS
		res.Place.Moves++
		switch m.Reason {
		case placement.ReasonStarved:
			res.Place.StarvedMoves++
		case placement.ReasonConsolidate:
			res.Place.ConsolidateMoves++
		}
	}
	if c.obs != nil {
		c.planCtr.Inc()
		c.obs.Emit(obs.Event{T: float64(step + 1), Type: obs.EventPlacementSolve,
			Epoch: epoch, Amount: applied, Value: gain})
	}
}

// applyMove migrates one job: the source gives up its BE allocation,
// the destination takes the job's profile and the arrival template, and
// the destination starts its warm-up clock. Conservation is enforced
// against the live host table — a move whose source no longer hosts the
// job or whose destination is occupied is rejected whole.
func (c *Cluster) applyMove(m placement.Move, t float64, epoch, step int, solveRef obs.SpanRef) bool {
	p := c.Place
	n := len(c.Nodes)
	if m.From < 0 || m.From >= n || m.To < 0 || m.To >= n || m.From == m.To {
		return false
	}
	if m.Job < 0 || m.Job >= len(p.Jobs) || p.host[m.From] != m.Job || p.host[m.To] >= 0 {
		return false
	}
	src, dst := c.Nodes[m.From], c.Nodes[m.To]
	scfg := src.Config()
	scfg.BE = hw.Alloc{}
	if err := src.Apply(scfg); err != nil {
		return false
	}
	dcfg := dst.Config()
	dcfg.BE = p.BEAlloc
	if err := dst.Apply(dcfg); err != nil {
		return false
	}
	dst.BEProfile = p.Jobs[m.Job].BE
	p.host[m.From], p.host[m.To] = -1, m.Job
	p.warm[m.To] = p.WarmupS
	p.movedAt[m.From], p.movedAt[m.To] = step, step
	if c.obs != nil {
		c.migrCtr.Inc()
		c.obs.Emit(obs.Event{T: t, Node: NodeID(m.From), Type: obs.EventMigration,
			Reason: m.Reason, Amount: m.To, Epoch: epoch, Value: m.GainUPS})
		ref := c.obs.ChildSpan(obs.Span{Kind: obs.SpanMigration, Node: NodeID(m.From),
			Reason: m.Reason, Start: t, End: t, Epoch: epoch, Value: m.GainUPS}, solveRef)
		// Both endpoints' follow-up decisions (governor re-ramps, warm-up
		// settling) chain under the migration until they hold again.
		c.nodeSinks[m.From].SetSpanContext(ref)
		c.nodeSinks[m.To].SetSpanContext(ref)
	}
	return true
}

// placeTouched reports whether node i must not be treated as quiescent
// this step: it is warming (its accounting differs from steady state)
// or a move just changed its configuration or profile.
func (c *Cluster) placeTouched(i, step int) bool {
	p := c.Place
	if p == nil {
		return false
	}
	return p.suppressed[i] || p.movedAt[i] == step
}
