package cluster

import (
	"strings"
	"testing"
)

func TestJobQueueFIFOCompletion(t *testing.T) {
	var q JobQueue
	a := q.Submit(0, 100)
	b := q.Submit(1, 50)
	q.Advance(2, 60) // a: 60/100
	if a.StartS != 2 || a.Done() {
		t.Fatalf("job a state: %+v", a)
	}
	if b.StartS != -1 {
		t.Fatal("job b started before a finished")
	}
	q.Advance(3, 60) // a done at 3 (40 used), b gets 20/50
	if !a.Done() || a.FinishS != 3 {
		t.Fatalf("job a: %+v", a)
	}
	if b.StartS != 3 || b.Progress != 20 {
		t.Fatalf("job b: %+v", b)
	}
	q.Advance(4, 30) // b done
	if !b.Done() || b.FinishS != 4 {
		t.Fatalf("job b: %+v", b)
	}
	st := q.Stats()
	if st.Completed != 2 || st.Submitted != 2 {
		t.Fatalf("stats %+v", st)
	}
	// waits: a: 2-0=2, b: 3-1=2 → mean 2. turnarounds: 3, 3 → mean 3.
	if st.MeanWaitS != 2 || st.MeanTurnaroundS != 3 {
		t.Errorf("stats %+v", st)
	}
	if !strings.Contains(st.String(), "2/2 done") {
		t.Errorf("String() = %q", st.String())
	}
}

func TestJobQueueIdleCapacity(t *testing.T) {
	var q JobQueue
	q.Advance(1, 500) // nothing queued: capacity evaporates
	j := q.Submit(2, 100)
	q.Advance(3, 500)
	if !j.Done() || j.FinishS != 3 {
		t.Fatalf("job: %+v", j)
	}
}

func TestJobQueueUnfinished(t *testing.T) {
	var q JobQueue
	q.Submit(0, 1e9)
	q.Advance(1, 10)
	st := q.Stats()
	if st.Completed != 0 || st.Submitted != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.MeanTurnaroundS != 0 {
		t.Error("unfinished jobs contributed to turnaround")
	}
}
