package cluster

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"sturgeon/internal/jsonio"
	"sturgeon/internal/obs"
)

// journalDump runs the coordinated golden scenario with a sink attached
// and returns the run summary plus the canonical JSON encoding of the
// journal — the byte string the determinism criteria are stated over.
func journalDump(t *testing.T, parallelism int) (string, []byte) {
	t.Helper()
	sink := obs.New(0)
	res := coordGoldenScenarioObs(t, parallelism, sink)
	doc := sink.Journal.Doc()
	if err := doc.Validate(); err != nil {
		t.Fatalf("journal doc invalid: %v", err)
	}
	data, err := jsonio.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return res.Summary(), data
}

// TestObsDoesNotPerturbGoldenSummaries pins the zero-interference
// contract: attaching the full observability layer must not move either
// golden fixture by a byte. Instrumentation reads the decision sequence;
// it never participates in it.
func TestObsDoesNotPerturbGoldenSummaries(t *testing.T) {
	if *updateGolden {
		t.Skip("golden fixtures being rewritten")
	}
	coordWant, err := os.ReadFile(filepath.Join("testdata", "coord_summary.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if got := coordGoldenScenarioObs(t, 1, obs.New(0)).Summary(); got != string(coordWant) {
		t.Errorf("journal-enabled coordinated run drifted from golden fixture.\n--- got ---\n%s--- want ---\n%s",
			got, coordWant)
	}
	fleetWant, err := os.ReadFile(filepath.Join("testdata", "fleet_summary.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if got := goldenScenarioObs(t, 0, obs.New(0)).Summary(); got != string(fleetWant) {
		t.Errorf("journal-enabled fleet run drifted from golden fixture.\n--- got ---\n%s--- want ---\n%s",
			got, fleetWant)
	}
}

// TestObsJournalByteIdenticalAcrossParallelism is the observability
// determinism criterion: with the journal enabled, both the run summary
// and the serialized events document must be byte-identical at stepping
// parallelism 1, 2, 4 and 8 — the staging-journal drain in Run's serial
// merge is what makes the global sequence numbers worker-count-free.
func TestObsJournalByteIdenticalAcrossParallelism(t *testing.T) {
	refSum, refDump := journalDump(t, 1)
	if len(refDump) == 0 {
		t.Fatal("empty journal dump")
	}
	for _, par := range []int{2, 4, 8} {
		sum, dump := journalDump(t, par)
		if sum != refSum {
			t.Fatalf("summary diverges at parallelism %d with journal enabled", par)
		}
		if !bytes.Equal(dump, refDump) {
			t.Fatalf("events dump diverges at parallelism %d (len %d vs %d)", par, len(dump), len(refDump))
		}
	}
}

// TestObsMetricsMatchRun cross-checks the registry against the run's own
// accounting: every applied grant counts once, the cap-granted events
// agree with the counter, and each node's cap gauge ends on the cap the
// cluster reports in force.
func TestObsMetricsMatchRun(t *testing.T) {
	o := DefaultCoordFleet(20260806)
	o.Coordinated = true
	o.Chaos = true
	c, err := BuildCoordFleet(o)
	if err != nil {
		t.Fatal(err)
	}
	c.Parallelism = 1
	sink := obs.New(0)
	c.SetObs(sink)
	res := c.Run(o.Trace(), o.DurationS)

	grants := sink.Metrics.Counter("fleet_cap_grants_total").Value()
	if grants == 0 {
		t.Fatal("coordinated chaos run applied no grants")
	}
	var granted, adjusts int64
	for _, ev := range sink.Journal.Since(0) {
		switch ev.Type {
		case obs.EventCapGranted:
			granted++
			if ev.Epoch <= 0 || ev.Value <= 0 {
				t.Fatalf("cap_granted event missing epoch/value: %+v", ev)
			}
		case obs.EventGovernorAdjust:
			adjusts++
		}
	}
	if granted != grants {
		t.Errorf("cap_granted events %d != fleet_cap_grants_total %d", granted, grants)
	}
	if adjusts == 0 {
		t.Error("governors journaled no adjustments over a 480 s diurnal run")
	}
	for i, w := range c.Caps() {
		g := sink.Metrics.Gauge(obs.Labeled("fleet_node_cap_watts", "node", NodeID(i)))
		if g.Value() != float64(w) {
			t.Errorf("node %d cap gauge %.1f, want %.1f", i, g.Value(), float64(w))
		}
	}
	// The same scrape must render as valid Prometheus text.
	var buf bytes.Buffer
	if err := sink.Metrics.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("# TYPE fleet_cap_grants_total counter")) {
		t.Error("prometheus output missing fleet counter family")
	}
	_ = res
}

// TestObsEvictionEvents drives the scripted-crash golden fleet and
// requires the journal to carry the eviction and readmission the health
// battery already pins in the summary fixture.
func TestObsEvictionEvents(t *testing.T) {
	sink := obs.New(0)
	res := goldenScenarioObs(t, 1, sink)
	if res.Health.Evictions == 0 {
		t.Fatal("golden scenario no longer evicts; eviction events untestable")
	}
	var evicted, readmitted int
	for _, ev := range sink.Journal.Since(0) {
		switch ev.Type {
		case obs.EventNodeEvicted:
			evicted++
			if ev.Node == "" {
				t.Error("eviction event missing node label")
			}
		case obs.EventNodeReadmitted:
			readmitted++
		}
	}
	if evicted != res.Health.Evictions || readmitted != res.Health.Readmissions {
		t.Errorf("journal evictions/readmissions %d/%d, run counted %d/%d",
			evicted, readmitted, res.Health.Evictions, res.Health.Readmissions)
	}
	if got := sink.Metrics.Counter("fleet_evictions_total").Value(); got != int64(res.Health.Evictions) {
		t.Errorf("fleet_evictions_total %d, want %d", got, res.Health.Evictions)
	}
	if got := sink.Metrics.Counter("fleet_faults_injected_total").Value(); got != int64(res.Faults.Total()) {
		t.Errorf("fleet_faults_injected_total %d, want %d", got, res.Faults.Total())
	}
}

// TestNodeID pins the identity format shared by coordinator reports,
// metric labels and journal events.
func TestNodeID(t *testing.T) {
	for i, want := range map[int]string{0: "node-000", 7: "node-007", 123: "node-123"} {
		if got := NodeID(i); got != want {
			t.Errorf("NodeID(%d) = %q, want %q", i, got, want)
		}
	}
	if NodeID(3) != fmt.Sprintf("node-%03d", 3) {
		t.Error("NodeID format drifted")
	}
}
