package cluster

import (
	"fmt"
	"os"
	"testing"

	"sturgeon/internal/obs"
)

// benchCoordRun steps a fresh coordinated 8-node fleet for 60 simulated
// seconds per iteration, with fleet construction kept off the timer so
// the measurement isolates the node-stepping hot path the observability
// layer instruments.
func benchCoordRun(b *testing.B, instrument bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		o := DefaultCoordFleet(7)
		o.DurationS = 60
		o.Coordinated = true
		c, err := BuildCoordFleet(o)
		if err != nil {
			b.Fatal(err)
		}
		c.Parallelism = 1
		if instrument {
			c.SetObs(obs.New(0))
		}
		tr := o.Trace()
		b.StartTimer()
		c.Run(tr, o.DurationS)
	}
}

// BenchmarkInstrumentedStep compares fleet stepping with the full
// observability layer attached against the nil-sink baseline — the
// numbers behind the <5 % overhead budget of DESIGN.md §11. Run the CI
// gate with:
//
//	OBS_OVERHEAD_GATE=1 go test ./internal/cluster -run ObsOverheadGate -v
func BenchmarkInstrumentedStep(b *testing.B) {
	b.Run("nil-sink", func(b *testing.B) { benchCoordRun(b, false) })
	b.Run("instrumented", func(b *testing.B) { benchCoordRun(b, true) })
}

// TestObsOverheadGate enforces the overhead budget: instrumented
// stepping must stay within 5 % of the nil-sink baseline. It is gated
// behind OBS_OVERHEAD_GATE=1 because wall-clock ratios on loaded
// machines are too noisy for the always-on tier-1 battery; the CI
// obs-overhead job sets the variable on a dedicated runner. Each arm
// keeps its best of three testing.Benchmark measurements, which filters
// scheduler noise the same way the bench harness's best-of repeats do.
func TestObsOverheadGate(t *testing.T) {
	if os.Getenv("OBS_OVERHEAD_GATE") == "" {
		t.Skip("set OBS_OVERHEAD_GATE=1 to run the instrumented-stepping overhead gate")
	}
	best := func(instrument bool) float64 {
		bestNs := 0.0
		for rep := 0; rep < 3; rep++ {
			r := testing.Benchmark(func(b *testing.B) { benchCoordRun(b, instrument) })
			if ns := float64(r.NsPerOp()); bestNs == 0 || ns < bestNs {
				bestNs = ns
			}
		}
		return bestNs
	}
	base := best(false)
	inst := best(true)
	overhead := inst/base - 1
	t.Logf("nil-sink %.2f ms/run, instrumented %.2f ms/run, overhead %+.2f%%",
		base/1e6, inst/1e6, 100*overhead)
	if overhead > 0.05 {
		t.Errorf("observability overhead %.2f%% exceeds the 5%% budget (%s)",
			100*overhead, fmt.Sprintf("baseline %.2f ms, instrumented %.2f ms", base/1e6, inst/1e6))
	}
}
