package cluster

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"sturgeon/internal/obs"
)

// benchCoordRun steps a fresh coordinated 8-node fleet for 60 simulated
// seconds per iteration on the given engine, with fleet construction
// kept off the timer so the measurement isolates the stepping hot path
// the observability layer instruments. Instrumented arms attach the
// full sink — metrics, journal, tracer and timeline recorder — so the
// budget covers spans and series recording, not just counters. The
// sink is long-lived (one per benchmark, as on a daemon): recreating
// the 16k-entry journal/trace rings every iteration would leak their
// allocation's GC cost into the timed region and measure allocator
// churn instead of instrumentation. The off-timer runtime.GC() settles
// construction garbage symmetrically in both arms.
func benchCoordRun(b *testing.B, engine Engine, instrument bool) {
	b.ReportAllocs()
	var sink *obs.Sink
	if instrument {
		sink = obs.NewSeeded(7, 0)
	}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		o := DefaultCoordFleet(7)
		o.DurationS = 60
		o.Coordinated = true
		c, err := BuildCoordFleet(o)
		if err != nil {
			b.Fatal(err)
		}
		c.Parallelism = 1
		c.Engine = engine
		if instrument {
			c.SetObs(sink)
		} else {
			// Attaching a sink disables cross-node memo sharing by design
			// (per-node gauges must track per-node Decide calls), so the
			// baseline holds that policy fixed: the ratio then measures the
			// instrumentation cost the budget bounds, not the memo trade.
			c.testDisableMemo = true
		}
		tr := o.Trace()
		runtime.GC()
		b.StartTimer()
		c.Run(tr, o.DurationS)
	}
}

// BenchmarkInstrumentedStep compares fleet stepping with the full
// observability layer attached against the nil-sink baseline, on both
// engines — the numbers behind the <5 % overhead budget of DESIGN.md
// §11. Run the CI gate with:
//
//	OBS_OVERHEAD_GATE=1 go test ./internal/cluster -run ObsOverheadGate -v
func BenchmarkInstrumentedStep(b *testing.B) {
	b.Run("step/nil-sink", func(b *testing.B) { benchCoordRun(b, EngineStep, false) })
	b.Run("step/instrumented", func(b *testing.B) { benchCoordRun(b, EngineStep, true) })
	b.Run("event/nil-sink", func(b *testing.B) { benchCoordRun(b, EngineEvent, false) })
	b.Run("event/instrumented", func(b *testing.B) { benchCoordRun(b, EngineEvent, true) })
}

// TestObsOverheadGate enforces the overhead budget on both engines:
// instrumented stepping (spans and timeline recording included) must
// stay within 5 % of that engine's nil-sink baseline. It is gated
// behind OBS_OVERHEAD_GATE=1 because wall-clock ratios on loaded
// machines are too noisy for the always-on tier-1 battery; the CI
// obs-overhead job sets the variable on a dedicated runner.
//
// Measurement discipline: single ~12 ms runs are timed individually
// and the arms interleaved in an ABBA pattern, so machine-load bursts
// land on both arms nearly symmetrically instead of poisoning one
// arm's whole measurement (which is exactly what a coarse
// benchmark-per-arm comparison suffers under sustained load). Load
// only ever slows a run, so comparing per-arm minima over the
// interleaved samples converges on the true cost ratio, while a real
// regression keeps the instrumented minimum above budget in every
// sample.
func TestObsOverheadGate(t *testing.T) {
	if os.Getenv("OBS_OVERHEAD_GATE") == "" {
		t.Skip("set OBS_OVERHEAD_GATE=1 to run the instrumented-stepping overhead gate")
	}
	const reps = 12
	for _, eng := range []struct {
		name   string
		engine Engine
	}{{"step", EngineStep}, {"event", EngineEvent}} {
		// One long-lived sink per engine, as on a daemon — see
		// benchCoordRun for why recreating the rings would skew the arm.
		sink := obs.NewSeeded(7, 0)
		sample := func(instrument bool) float64 {
			o := DefaultCoordFleet(7)
			o.DurationS = 60
			o.Coordinated = true
			c, err := BuildCoordFleet(o)
			if err != nil {
				t.Fatal(err)
			}
			c.Parallelism = 1
			c.Engine = eng.engine
			if instrument {
				c.SetObs(sink)
			} else {
				c.testDisableMemo = true // hold memo policy fixed, as in benchCoordRun
			}
			tr := o.Trace()
			runtime.GC()
			start := time.Now()
			c.Run(tr, o.DurationS)
			return time.Since(start).Seconds()
		}
		sample(false) // warm code paths and caches before timing
		sample(true)
		minBase, minInst := math.Inf(1), math.Inf(1)
		for rep := 0; rep < reps; rep++ {
			arms := []bool{false, true}
			if rep%2 == 1 {
				arms[0], arms[1] = arms[1], arms[0]
			}
			for _, instrument := range arms {
				s := sample(instrument)
				if instrument {
					minInst = math.Min(minInst, s)
				} else {
					minBase = math.Min(minBase, s)
				}
			}
		}
		overhead := minInst/minBase - 1
		t.Logf("%s engine: nil-sink %.2f ms/run, instrumented %.2f ms/run, overhead %+.2f%%",
			eng.name, 1e3*minBase, 1e3*minInst, 100*overhead)
		if overhead > 0.05 {
			t.Errorf("%s engine observability overhead %.2f%% exceeds the 5%% budget (%s)",
				eng.name, 100*overhead,
				fmt.Sprintf("baseline %.2f ms, instrumented %.2f ms", 1e3*minBase, 1e3*minInst))
		}
	}
}
