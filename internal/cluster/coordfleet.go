package cluster

import (
	"fmt"

	"sturgeon/internal/control"
	"sturgeon/internal/coordinator"
	"sturgeon/internal/durable"
	"sturgeon/internal/faults"
	"sturgeon/internal/hw"
	"sturgeon/internal/power"
	"sturgeon/internal/workload"
)

// CoordFleetOptions pins the coordinated diurnal fleet scenario: the
// workload where fleet-level cap arbitration beats a static even split.
// A rotating skewed dispatch (phase-shifted across the ring) rides on a
// diurnal swell, so at any moment some nodes are power-starved — their
// governor pinned against the cap with best-effort throttled — while
// others strand watts their workload cannot spend. The coordinator moves
// the stranded watts to the starved nodes; because the simulator's power
// curve is convex in frequency, a watt buys more best-effort progress on
// a throttled node than it bought on a saturated one, so the fleet gains
// both throughput and QoS at the same total budget. bench, experiments
// and the golden battery all build the scenario through here, so they
// compare and pin exactly the same physics.
type CoordFleetOptions struct {
	// Nodes is the fleet size; EvenCapW the per-node static cap the
	// budget is carved from (BudgetW = Nodes × EvenCapW).
	Nodes    int
	EvenCapW float64
	// MinCapW and MaxCapW clamp coordinated grants.
	MinCapW, MaxCapW float64
	// EpochS is the reporting period in simulated seconds.
	EpochS int
	// SkewAmp and PeriodS shape the rotating skew; LoadLo and LoadHi the
	// diurnal swell (fractions of fleet peak QPS); DurationS the horizon.
	SkewAmp   float64
	PeriodS   float64
	LoadLo    float64
	LoadHi    float64
	DurationS int
	// Seed drives node physics (and the chaos plan, when enabled).
	Seed int64
	// Coordinated arbitrates caps through an in-process coordinator;
	// false runs the even-split baseline (same fleet, static caps).
	Coordinated bool
	// Chaos adds the coordinator-path fault plan (dropped reports and
	// coordinator outages, coordinator.DefaultChaosSpec).
	Chaos bool
	// CrashRestart kills the coordinator for a six-epoch window centered
	// mid-run and restarts it from its durable state: the coordinator
	// runs behind write-ahead persistence (durable.MemStore — the
	// byte-faithful in-memory twin of the daemon's state dir), the kill
	// destroys the in-memory arbiter, and coordinator.Recover stands the
	// replacement up from snapshot + record log. Requires Coordinated.
	CrashRestart bool
	// Leased turns every grant into a fenced lease with a two-epoch TTL
	// (coordinator.Options.LeaseEpochs): missed renewals ratchet the
	// node toward its even-split floor while the coordinator reclaims
	// the expired watts for re-arbitration. Requires Coordinated.
	Leased bool
	// Partition wraps the transport in the pinned coordpartition8
	// schedule (PartitionWindows): one node fully partitioned across
	// its load decline, one node losing only the grant direction. With
	// Leased=false this is the stale-cap-cliff baseline the
	// leased-beats-cliff win gate compares against.
	Partition bool
	// Net, when non-nil, wraps the transport in this network-fault plan
	// instead of the pinned Partition windows — the chaos battery's
	// randomized schedules. Mutually exclusive with Partition.
	Net *faults.NetPlan
}

// DefaultCoordFleet is the pinned comparison point: 8 nodes at a 98 W
// even cap — between the fleet's idle floor (~80 W/node) and its
// saturated draw (~105 W/node), so caps genuinely bind — under a
// 0.28–0.52 diurnal swell with a ±70 % skew rotating once over the
// 480 s horizon.
func DefaultCoordFleet(seed int64) CoordFleetOptions {
	return CoordFleetOptions{
		Nodes:    8,
		EvenCapW: 98,
		MinCapW:  80,
		MaxCapW:  112,
		EpochS:   5,
		SkewAmp:  0.7, PeriodS: 480,
		LoadLo: 0.28, LoadHi: 0.52,
		DurationS: 480,
		Seed:      seed,
	}
}

// Trace returns the scenario's diurnal load trace.
func (o CoordFleetOptions) Trace() workload.Trace {
	return workload.Diurnal(o.LoadLo, o.LoadHi, float64(o.DurationS))
}

// PartitionWindows is the pinned coordpartition8 schedule, scaled to
// the run's epoch count. Node 7 loses both directions right after its
// skew peak (t≈180 of 480) and stays dark across its load decline: its
// high-water cap — granted while it was the fleet's hungriest node —
// would otherwise stay stranded on a node that no longer needs the
// watts, exactly when the nodes peaking next (5, then 4) are pinned
// with their best-effort at the frequency floor, where a reclaimed
// watt buys the most work. Node 5 loses only the grant direction late
// in the run: its reports keep renewing the server-side lease while
// the node itself, hearing nothing, degrades to its floor — the
// asymmetric case the budget invariant's in-flight slack term exists
// for.
func PartitionWindows(epochs, nodes int) []faults.NetWindow {
	e := func(f float64) int { return int(f * float64(epochs)) }
	ws := []faults.NetWindow{
		{Node: 7, Dir: faults.DirReport, Start: e(0.42), End: e(0.75)},
		{Node: 7, Dir: faults.DirGrant, Start: e(0.42), End: e(0.75)},
		{Node: 5, Dir: faults.DirGrant, Start: e(0.73), End: e(0.81)},
	}
	out := ws[:0]
	for _, w := range ws {
		if w.Node < nodes {
			out = append(out, w)
		}
	}
	return out
}

// BuildCoordFleet materializes the scenario: a memcached+raytrace fleet
// of governor-managed nodes on the skewed dispatch, optionally wired to
// an in-process coordinator (with its chaos plan). Run it with
// c.Run(o.Trace(), o.DurationS).
func BuildCoordFleet(o CoordFleetOptions) (*Cluster, error) {
	if o.Nodes <= 0 || o.EvenCapW <= 0 || o.DurationS <= 0 || o.EpochS <= 0 {
		return nil, fmt.Errorf("cluster: coord fleet needs positive nodes, cap, duration and epoch")
	}
	ls, be := workload.Memcached(), workload.Raytrace()
	c, err := New(o.Nodes, ls, be, power.Watts(o.EvenCapW),
		&Skewed{Amp: o.SkewAmp, PeriodS: o.PeriodS}, o.Seed,
		func(int) control.Controller {
			return control.NewGovernor(hw.DefaultSpec(), power.Watts(o.EvenCapW))
		})
	if err != nil {
		return nil, err
	}
	// Boot configuration: an LS-heavy split at the BE frequency floor, so
	// every node starts under its cap and the governors climb instead of
	// shedding.
	split := hw.Config{
		LS: hw.Alloc{Cores: 12, Freq: 2.0, LLCWays: 12},
		BE: hw.Alloc{Cores: 8, Freq: 1.2, LLCWays: 8},
	}
	for _, n := range c.Nodes {
		if err := n.Apply(split); err != nil {
			return nil, err
		}
	}
	if !o.Coordinated {
		return c, nil
	}
	copt := coordinator.Options{
		BudgetW:   o.EvenCapW * float64(o.Nodes),
		MinCapW:   o.MinCapW,
		MaxCapW:   o.MaxCapW,
		FleetSize: o.Nodes,
	}
	if o.Leased {
		copt.LeaseEpochs = 2
	}
	co, err := coordinator.New(copt)
	if err != nil {
		return nil, err
	}
	cd := &Coordination{Transport: &coordinator.Local{C: co}, EpochS: o.EpochS}
	if o.Chaos {
		cd.Chaos = coordinator.NewChaos(coordinator.DefaultChaosSpec(), o.Seed+1,
			o.DurationS/o.EpochS, o.Nodes)
	}
	if o.CrashRestart {
		// Snapshot cadence of ~3 fleet rounds: the kill lands between
		// snapshots, so recovery exercises snapshot + log replay, not just
		// a fresh snapshot.
		store := durable.NewMemStore()
		snapEvery := 3 * o.Nodes
		cd.Transport = &coordinator.DurableLocal{C: co,
			P: &coordinator.Persist{Store: store, SnapshotEvery: snapEvery}}
		epochs := o.DurationS / o.EpochS
		mid := epochs / 2
		cd.Kill = faults.ManualCoordKill(epochs,
			faults.CoordKillWindow{Start: mid, End: mid + 6})
		cd.Restart = func() (coordinator.Transport, coordinator.RecoveryInfo, error) {
			rc, info, err := coordinator.Recover(store, copt, nil)
			if err != nil {
				return nil, info, err
			}
			return &coordinator.DurableLocal{C: rc,
				P: &coordinator.Persist{Store: store, SnapshotEvery: snapEvery}}, info, nil
		}
	}
	plan := o.Net
	if plan == nil && o.Partition {
		epochs := o.DurationS / o.EpochS
		plan = faults.ManualNet(epochs, o.Nodes, PartitionWindows(epochs, o.Nodes)...)
	}
	if plan != nil {
		// The chaos wrapper survives coordinator restarts: a kill replaces
		// the inner transport, not the network between the fleet and it,
		// so the recovered coordinator sits behind the same schedule and
		// the same running tallies.
		nc := &coordinator.NetChaos{Inner: cd.Transport, Plan: plan}
		cd.Transport = nc
		if prev := cd.Restart; prev != nil {
			cd.Restart = func() (coordinator.Transport, coordinator.RecoveryInfo, error) {
				tr, info, err := prev()
				if err != nil {
					return nil, info, err
				}
				nc.Inner = tr
				return nc, info, nil
			}
		}
	}
	c.Coord = cd
	return c, nil
}
