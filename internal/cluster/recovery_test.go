package cluster

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sturgeon/internal/obs"
	"sturgeon/internal/workload"
)

// crashGoldenScenario is the pinned coordinator crash/restart fleet:
// the default coordinated diurnal scenario with a six-epoch coordinator
// kill window centered mid-run, the coordinator running behind
// MemStore-backed write-ahead persistence and recovering from
// snapshot + record log at the window's end. Its summary lives in
// testdata/coord_crash_summary.golden.
func crashGoldenScenario(t *testing.T, parallelism int, sink *obs.Sink) (*Cluster, Result) {
	t.Helper()
	c, tr, duration := crashGoldenScenarioCluster(t, parallelism, sink)
	return c, c.Run(tr, duration)
}

// crashGoldenScenarioCluster builds the crash/restart fleet without
// running it (for the cross-engine equivalence battery).
func crashGoldenScenarioCluster(t *testing.T, parallelism int, sink *obs.Sink) (*Cluster, workload.Trace, int) {
	t.Helper()
	o := DefaultCoordFleet(20260807)
	o.Coordinated = true
	o.CrashRestart = true
	c, err := BuildCoordFleet(o)
	if err != nil {
		t.Fatal(err)
	}
	c.Parallelism = parallelism
	c.SetObs(sink)
	return c, o.Trace(), o.DurationS
}

func TestGoldenCoordCrashSummary(t *testing.T) {
	_, res := crashGoldenScenario(t, 1, nil)
	got := res.Summary()
	path := filepath.Join("testdata", "coord_crash_summary.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("crash/restart fleet summary drifted from golden fixture.\n--- got ---\n%s--- want ---\n%s"+
			"(if the change is intentional, regenerate with `go test ./internal/cluster -run Golden -update`)",
			got, want)
	}
}

// TestCoordCrashParallelismByteIdentical pins the acceptance criterion:
// the seeded crash/restart run — kill, recovery, replay and all — is
// byte-identical at every node-stepping fan-out, because the whole
// coordination path (including the MemStore appends and the Recover
// call) lives in Run's serial merge.
func TestCoordCrashParallelismByteIdentical(t *testing.T) {
	_, ref := crashGoldenScenario(t, 1, nil)
	refSum := ref.Summary()
	for _, par := range []int{2, 4, 8} {
		_, res := crashGoldenScenario(t, par, nil)
		if got := res.Summary(); got != refSum {
			t.Fatalf("crash/restart summary diverges at parallelism %d.\n--- par=1 ---\n%s--- par=%d ---\n%s",
				par, refSum, par, got)
		}
	}
}

// TestCoordCrashRecoveryAccounting checks the crash window's visible
// footprint: six epochs lost whole, exactly one recovery, the
// coord_crash summary line present, and the recovered coordinator's
// post-run status conserving the budget with every cap in clamp.
func TestCoordCrashRecoveryAccounting(t *testing.T) {
	sink := obs.New(0)
	c, res := crashGoldenScenario(t, 1, sink)

	if res.Coord.CrashEpochs != 6 {
		t.Errorf("crash epochs %d, want 6", res.Coord.CrashEpochs)
	}
	if res.Coord.Recoveries != 1 {
		t.Errorf("recoveries %d, want 1", res.Coord.Recoveries)
	}
	if res.Coord.Fallbacks < 6*len(c.Nodes) {
		t.Errorf("fallbacks %d below the crash floor %d", res.Coord.Fallbacks, 6*len(c.Nodes))
	}
	if !strings.Contains(res.Summary(), "coord_crash epochs 6 recoveries 1\n") {
		t.Errorf("summary missing the coord_crash line:\n%s", res.Summary())
	}

	// The recovered coordinator must still conserve the budget exactly
	// and keep every cap inside the grant clamp.
	o := DefaultCoordFleet(20260807)
	st, err := c.Coord.Transport.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	budget := o.EvenCapW * float64(o.Nodes)
	sum := st.PoolW
	for _, n := range st.Nodes {
		sum += n.CapW
		if n.CapW < o.MinCapW-1e-9 || n.CapW > o.MaxCapW+1e-9 {
			t.Errorf("node %s cap %.2f W outside clamp [%.0f, %.0f]",
				n.NodeID, n.CapW, o.MinCapW, o.MaxCapW)
		}
	}
	if math.Abs(sum-budget) > 1e-6 {
		t.Errorf("recovered fleet does not conserve the budget: caps+pool %.4f W vs %.1f W", sum, budget)
	}
	if len(st.Nodes) != o.Nodes {
		t.Errorf("recovered status lists %d nodes, want %d", len(st.Nodes), o.Nodes)
	}

	// Observability: one fleet-level recovery counted and journaled, with
	// a recovery reason from the documented ladder.
	if got := sink.Metrics.Counter("fleet_coord_recoveries_total").Value(); got != 1 {
		t.Errorf("fleet_coord_recoveries_total = %d, want 1", got)
	}
	var recEvents []obs.Event
	for _, ev := range sink.Journal.Since(0) {
		if ev.Type == obs.EventRecoveryCompleted {
			recEvents = append(recEvents, ev)
		}
	}
	if len(recEvents) != 1 {
		t.Fatalf("journal carries %d recovery events, want 1", len(recEvents))
	}
	switch recEvents[0].Reason {
	case "clean", "no_snapshot", "torn_log":
		// Non-degraded recovery paths: the store was healthy.
	default:
		t.Errorf("recovery degraded inside the clean-store scenario: %q", recEvents[0].Reason)
	}
	epochs := DefaultCoordFleet(0).DurationS / DefaultCoordFleet(0).EpochS
	if restart := recEvents[0].Epoch; restart != epochs/2+6 {
		t.Errorf("recovery at epoch %d, want %d (end of the kill window)", restart, epochs/2+6)
	}
}

// TestCoordCrashRecoveryMatchesUnkilledGrants is the exact-recovery
// property at fleet scale: because recovery replays the write-ahead log
// into the same pure state machine, a fleet whose coordinator was
// killed and recovered must end with a *valid* grant schedule — and
// every epoch after the recovery must keep epoch numbering monotone
// (the recovered coordinator never hands out grants from a rewound
// epoch).
func TestCoordCrashRecoveryMatchesUnkilledGrants(t *testing.T) {
	sink := obs.New(0)
	_, res := crashGoldenScenario(t, 1, sink)
	if !res.Coordinated || res.Coord.Recoveries != 1 {
		t.Fatalf("scenario did not recover: %+v", res.Coord)
	}
	// Grant events carry the arbitration epoch; after the restart epoch
	// they must resume at or above the pre-crash epoch, never below.
	var maxBefore, restartEpoch int
	for _, ev := range sink.Journal.Since(0) {
		if ev.Type == obs.EventRecoveryCompleted {
			restartEpoch = ev.Epoch
		}
	}
	if restartEpoch == 0 {
		t.Fatal("no recovery event journaled")
	}
	for _, ev := range sink.Journal.Since(0) {
		if ev.Type != obs.EventCapGranted {
			continue
		}
		if ev.Epoch < restartEpoch {
			if ev.Epoch > maxBefore {
				maxBefore = ev.Epoch
			}
			continue
		}
		if ev.Epoch < maxBefore {
			t.Fatalf("post-recovery grant at epoch %d below pre-crash epoch %d: recovery rewound time",
				ev.Epoch, maxBefore)
		}
	}
}
