package models

import (
	"testing"

	"sturgeon/internal/hw"
	"sturgeon/internal/workload"
)

func TestPredictorSaveLoadRoundTrip(t *testing.T) {
	ls, be := workload.Memcached(), workload.Raytrace()
	pred, err := Train(ls, be, TrainOptions{Collect: smallOpts})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := pred.Save(dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPredictor(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.LS.Name != "memcached" || back.BE.Name != "rt" {
		t.Errorf("manifest apps = %s/%s", back.LS.Name, back.BE.Name)
	}
	if back.InputLevel != pred.InputLevel || back.LatencyMargin != pred.LatencyMargin {
		t.Error("manifest scalars drifted")
	}
	// Every prediction surface must be bit-identical after reload.
	for _, c := range []int{2, 6, 12, 18} {
		for _, f := range []hw.GHz{1.2, 1.7, 2.2} {
			a := hw.Alloc{Cores: c, Freq: f, LLCWays: c}
			qps := float64(c) * 1500
			if pred.QoSOK(a, qps) != back.QoSOK(a, qps) {
				t.Fatalf("QoSOK drift at %v", a)
			}
			if pred.Throughput(a) != back.Throughput(a) {
				t.Fatalf("Throughput drift at %v", a)
			}
			cfg := hw.Config{LS: a, BE: hw.Alloc{Cores: 20 - c, Freq: f, LLCWays: 20 - c}}
			if pred.PowerW(cfg, qps) != back.PowerW(cfg, qps) {
				t.Fatalf("PowerW drift at %v", cfg)
			}
		}
	}
}

func TestLoadPredictorErrors(t *testing.T) {
	if _, err := LoadPredictor(t.TempDir()); err == nil {
		t.Error("empty directory accepted")
	}
}
