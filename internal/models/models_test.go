package models

import (
	"testing"

	"sturgeon/internal/hw"
	"sturgeon/internal/mlkit"
	"sturgeon/internal/sim"
	"sturgeon/internal/workload"
)

// smallOpts keeps test sweeps fast while remaining statistically useful.
var smallOpts = CollectOptions{Samples: 500, IntervalsPerSample: 2, Seed: 7}

func TestCollectLSShapes(t *testing.T) {
	perf, pow, lat := CollectLS(workload.Memcached(), smallOpts)
	if perf.Len() != smallOpts.Samples || pow.Len() != smallOpts.Samples {
		t.Fatalf("collected %d/%d samples, want %d", perf.Len(), pow.Len(), smallOpts.Samples)
	}
	if err := perf.Validate(); err != nil {
		t.Fatal(err)
	}
	ones, zeros := 0, 0
	for _, y := range perf.Y {
		if y == 1 {
			ones++
		} else if y == 0 {
			zeros++
		} else {
			t.Fatalf("non-binary feasibility label %v", y)
		}
	}
	// The random sweep must see both feasible and infeasible points,
	// otherwise the classifier has nothing to learn.
	if ones < perf.Len()/10 || zeros < perf.Len()/10 {
		t.Errorf("unbalanced labels: %d feasible, %d infeasible", ones, zeros)
	}
	for _, y := range pow.Y {
		if y < 60 || y > 160 {
			t.Fatalf("implausible power label %v", y)
		}
	}
	if lat.Len() != smallOpts.Samples {
		t.Fatalf("latency dataset has %d samples", lat.Len())
	}
	for _, y := range lat.Y {
		if y < -6 || y > 2 {
			t.Fatalf("implausible log10 latency label %v", y)
		}
	}
}

func TestCollectBEShapes(t *testing.T) {
	thpt, pow := CollectBE(workload.Raytrace(), smallOpts)
	if thpt.Len() != smallOpts.Samples || pow.Len() != smallOpts.Samples {
		t.Fatalf("collected %d/%d samples", thpt.Len(), pow.Len())
	}
	for i, y := range thpt.Y {
		if y <= 0 {
			t.Fatalf("non-positive throughput label %v at %d", y, i)
		}
	}
	for _, y := range pow.Y {
		if y < 0 || y > 80 {
			t.Fatalf("implausible incremental power label %v", y)
		}
	}
	// Input level must vary (it is a model feature).
	levels := map[float64]bool{}
	for _, x := range thpt.X {
		levels[x[0]] = true
	}
	if len(levels) < 4 {
		t.Errorf("input levels sampled: %d distinct, want ≥4", len(levels))
	}
}

func TestTrainedPredictorAgreesWithPhysics(t *testing.T) {
	ls, be := workload.Memcached(), workload.Raytrace()
	pred, err := Train(ls, be, TrainOptions{Collect: CollectOptions{Samples: 900, IntervalsPerSample: 2, Seed: 11}})
	if err != nil {
		t.Fatal(err)
	}

	// Generous allocation at low load: clearly feasible.
	if !pred.QoSOK(hw.Alloc{Cores: 16, Freq: 2.2, LLCWays: 16}, 0.2*ls.PeakQPS) {
		t.Error("predictor rejects a clearly feasible allocation")
	}
	// Starved allocation at high load: clearly infeasible.
	if pred.QoSOK(hw.Alloc{Cores: 1, Freq: 1.2, LLCWays: 1}, 0.8*ls.PeakQPS) {
		t.Error("predictor accepts a clearly infeasible allocation")
	}

	// Throughput ordering: more resources, more predicted throughput.
	small := pred.Throughput(hw.Alloc{Cores: 4, Freq: 1.4, LLCWays: 4})
	big := pred.Throughput(hw.Alloc{Cores: 16, Freq: 2.0, LLCWays: 16})
	if big <= small {
		t.Errorf("predicted throughput not ordered: %v <= %v", big, small)
	}

	// Power prediction within a few percent of physics for a co-location.
	node := sim.QuietNode(ls, be, 3)
	cfg := hw.Config{
		LS: hw.Alloc{Cores: 6, Freq: 1.8, LLCWays: 8},
		BE: hw.Alloc{Cores: 14, Freq: 1.6, LLCWays: 12},
	}
	if err := node.Apply(cfg); err != nil {
		t.Fatal(err)
	}
	qps := 0.3 * ls.PeakQPS
	truth := float64(node.Step(1, qps).TruePower)
	got := float64(pred.PowerW(cfg, qps))
	if rel := abs(got-truth) / truth; rel > 0.08 {
		t.Errorf("power prediction %v vs physics %v (rel %.3f)", got, truth, rel)
	}

	if pred.Queries() == 0 {
		t.Error("query counter did not advance")
	}
}

func TestPredictorEdgeAllocations(t *testing.T) {
	pred, err := Train(workload.Xapian(), workload.Swaptions(),
		TrainOptions{Collect: smallOpts})
	if err != nil {
		t.Fatal(err)
	}
	if pred.Throughput(hw.Alloc{Cores: 0}) != 0 {
		t.Error("zero-core BE throughput not 0")
	}
	if pred.QoSOK(hw.Alloc{Cores: 0}, 100) {
		t.Error("zero-core LS allocation accepted under load")
	}
	if !pred.QoSOK(hw.Alloc{Cores: 0}, 0) {
		t.Error("zero-core LS allocation rejected with no load")
	}
	// Zero-core BE adds no power.
	cfgNoBE := hw.Config{LS: hw.Alloc{Cores: 8, Freq: 1.8, LLCWays: 8}}
	cfgBE := cfgNoBE
	cfgBE.BE = hw.Alloc{Cores: 10, Freq: 2.2, LLCWays: 10}
	if pred.PowerW(cfgBE, 500) <= pred.PowerW(cfgNoBE, 500) {
		t.Error("BE allocation did not add predicted power")
	}
}

func TestFeasibleCombinesQoSAndPower(t *testing.T) {
	ls, be := workload.Memcached(), workload.Swaptions()
	pred, err := Train(ls, be, TrainOptions{Collect: CollectOptions{Samples: 900, IntervalsPerSample: 2, Seed: 13}})
	if err != nil {
		t.Fatal(err)
	}
	budget := sim.LSPeakPower(hw.DefaultSpec(), sim.QuietNode(ls, be, 1).PowerParams,
		sim.QuietNode(ls, be, 1).Bus, ls)
	qps := 0.2 * ls.PeakQPS
	// Power-unaware configuration: QoS fine, power overloaded.
	hot := hw.Complement(hw.DefaultSpec(), hw.Alloc{Cores: 6, Freq: 1.8, LLCWays: 8}, 2.2)
	if pred.Feasible(hot, qps, budget) {
		t.Error("predictor accepted the Fig. 2 overload configuration")
	}
	// The same shape with a throttled BE should pass.
	cool := hot
	cool.BE.Freq = 1.4
	if !pred.Feasible(cool, qps, budget) {
		t.Error("predictor rejected a feasible throttled configuration")
	}
}

func TestCompareTechniquesOrdering(t *testing.T) {
	ls := workload.Memcached()
	perf, pow, _ := CollectLS(ls, CollectOptions{Samples: 900, IntervalsPerSample: 2, Seed: 17})

	clf, err := CompareClassification(perf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(clf) != 5 {
		t.Fatalf("got %d classification scores", len(clf))
	}
	for _, s := range clf {
		if s.Value < 0.6 || s.Value > 1 {
			t.Errorf("%s accuracy %v implausible", s.Technique, s.Value)
		}
	}
	// The paper's Fig. 6 finding: the tree family beats the linear
	// boundary model on LS feasibility — the bursty-traffic feasibility
	// surface with its hyper-threading kink rewards axis-aligned splits.
	byName := map[mlkit.Technique]float64{}
	for _, s := range clf {
		byName[s.Technique] = s.Value
	}
	if byName[mlkit.DT] <= byName[mlkit.LR] {
		t.Errorf("DT (%.3f) not above LR (%.3f) on LS feasibility", byName[mlkit.DT], byName[mlkit.LR])
	}
	if best := Best(clf); best.Value < 0.94 {
		t.Errorf("best feasibility model %s = %.3f, want ≥0.94", best.Technique, best.Value)
	}

	reg, err := CompareRegression(pow, 1)
	if err != nil {
		t.Fatal(err)
	}
	regBy := map[mlkit.Technique]float64{}
	for _, s := range reg {
		regBy[s.Technique] = s.Value
	}
	// Power is superlinear in frequency; KNN must beat linear regression
	// (the paper's Fig. 7 finding).
	if regBy[mlkit.KNN] <= regBy[mlkit.LR] {
		t.Errorf("KNN (%.3f) not above LR (%.3f) on power", regBy[mlkit.KNN], regBy[mlkit.LR])
	}
	if regBy[mlkit.KNN] < 0.9 {
		t.Errorf("KNN power R² = %.3f, want ≥0.9", regBy[mlkit.KNN])
	}
	best := Best(reg)
	if best.Value < regBy[mlkit.LR] {
		t.Error("Best returned a non-maximal score")
	}
}

func TestLassoPicksThePaperFeatures(t *testing.T) {
	// §V-A: Lasso selects input size, cores, frequency and ways. Augment
	// the sweep with two irrelevant telemetry columns and verify they are
	// ranked below the four real features for BE throughput.
	thpt, _ := CollectBE(workload.Ferret(), CollectOptions{Samples: 700, IntervalsPerSample: 2, Seed: 23})
	aug := make([][]float64, thpt.Len())
	for i, row := range thpt.X {
		// Deterministic pseudo-noise columns (node id, time of day).
		nodeID := float64(i % 7)
		timeOfDay := float64((i * 37) % 24)
		aug[i] = append(append([]float64(nil), row...), nodeID, timeOfDay)
	}
	real := len(BEFeatureNames)
	sel, err := mlkit.SelectFeatures(aug, thpt.Y, 0.02, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range sel {
		if idx >= real {
			t.Errorf("Lasso selected irrelevant feature %d; selection %v", idx, sel)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
