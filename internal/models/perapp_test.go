package models

import (
	"testing"

	"sturgeon/internal/hw"
	"sturgeon/internal/workload"
)

func TestPerAppBundles(t *testing.T) {
	ls, be := workload.Memcached(), workload.Swaptions()
	lds := SweepLS(ls, smallOpts)
	bds := SweepBE(be, smallOpts)

	lm, err := FitLS(ls, lds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !lm.QoSOK(hw.Alloc{Cores: 18, Freq: 2.2, LLCWays: 18}, 0.2*ls.PeakQPS) {
		t.Error("LS bundle rejects a generous allocation")
	}
	if lm.QoSOK(hw.Alloc{Cores: 1, Freq: 1.2, LLCWays: 1}, 0.9*ls.PeakQPS) {
		t.Error("LS bundle accepts a starved allocation")
	}
	if lm.QoSOK(hw.Alloc{}, 100) {
		t.Error("zero-core allocation accepted under load")
	}
	pw := lm.NodePowerW(hw.Alloc{Cores: 8, Freq: 1.8, LLCWays: 8}, 0.3*ls.PeakQPS)
	if pw < 60 || pw > 160 {
		t.Errorf("implausible node power %v", pw)
	}

	bm, err := FitBE(be, bds, 1)
	if err != nil {
		t.Fatal(err)
	}
	small := bm.Throughput(hw.Alloc{Cores: 4, Freq: 1.4, LLCWays: 4})
	big := bm.Throughput(hw.Alloc{Cores: 16, Freq: 2.0, LLCWays: 16})
	if !(0 < small && small < big) {
		t.Errorf("throughput ordering broken: %v vs %v", small, big)
	}
	if bm.Throughput(hw.Alloc{}) != 0 || bm.PowerIncW(hw.Alloc{}) != 0 {
		t.Error("zero-core BE allocation should predict zeros")
	}
	inc := bm.PowerIncW(hw.Alloc{Cores: 16, Freq: 2.2, LLCWays: 14})
	if inc <= 0 || inc > 80 {
		t.Errorf("implausible incremental power %v", inc)
	}
}

func TestFitErrorsOnEmptyDatasets(t *testing.T) {
	ls, be := workload.Memcached(), workload.Swaptions()
	if _, err := FitLS(ls, LSDatasets{}, 1); err == nil {
		t.Error("empty LS datasets accepted")
	}
	if _, err := FitBE(be, BEDatasets{}, 1); err == nil {
		t.Error("empty BE datasets accepted")
	}
}

func TestTrainAutoSelect(t *testing.T) {
	ls, be := workload.Memcached(), workload.Swaptions()
	pred, err := Train(ls, be, TrainOptions{Collect: smallOpts, AutoSelect: true})
	if err != nil {
		t.Fatal(err)
	}
	// The auto-selected predictor must still behave sensibly.
	if !pred.QoSOK(hw.Alloc{Cores: 18, Freq: 2.2, LLCWays: 18}, 0.2*ls.PeakQPS) {
		t.Error("auto-selected predictor rejects a generous allocation")
	}
	if pred.Throughput(hw.Alloc{Cores: 16, Freq: 2.0, LLCWays: 16}) <= 0 {
		t.Error("auto-selected predictor predicts no throughput")
	}
}

func TestTrainTechniqueOverrides(t *testing.T) {
	ls, be := workload.Memcached(), workload.Swaptions()
	pred, err := Train(ls, be, TrainOptions{
		Collect:        smallOpts,
		LSFeasibleTech: "MLP", LSPowerTech: "DT", BEThptTech: "KNN", BEPowerTech: "LR",
	})
	if err != nil {
		t.Fatal(err)
	}
	if pred.Throughput(hw.Alloc{Cores: 10, Freq: 1.8, LLCWays: 10}) <= 0 {
		t.Error("override-trained predictor predicts no throughput")
	}
}
