package models

import (
	"fmt"
	"math/rand"

	"sturgeon/internal/mlkit"
	"sturgeon/internal/telemetry"
)

// Score is one technique's quality on one model family.
type Score struct {
	Technique mlkit.Technique
	// Value is R² for regression models and accuracy for classification
	// models (the paper reports R² for both; accuracy is the natural
	// analogue for a binary classifier and lives on the same [0,1]
	// better-is-higher scale).
	Value float64
}

// CompareRegression evaluates every §V-C technique on a regression
// dataset with an 80/20 split and returns R² scores in figure order.
func CompareRegression(ds telemetry.Dataset, seed int64) ([]Score, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	train, test := ds.Split(0.2, rng)
	if train.Len() == 0 || test.Len() == 0 {
		return nil, fmt.Errorf("models: dataset with %d samples cannot be split", ds.Len())
	}
	var out []Score
	for _, tech := range mlkit.AllTechniques() {
		r2, err := mlkit.EvaluateRegressor(tech.NewRegressor(seed), train.X, train.Y, test.X, test.Y)
		if err != nil {
			return nil, fmt.Errorf("models: %s: %w", tech, err)
		}
		out = append(out, Score{tech, r2})
	}
	return out, nil
}

// CompareClassification evaluates every technique on a binary dataset
// (labels stored as 0/1 floats) and returns accuracy scores.
func CompareClassification(ds telemetry.Dataset, seed int64) ([]Score, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	train, test := ds.Split(0.2, rng)
	if train.Len() == 0 || test.Len() == 0 {
		return nil, fmt.Errorf("models: dataset with %d samples cannot be split", ds.Len())
	}
	toInt := func(ys []float64) []int {
		out := make([]int, len(ys))
		for i, v := range ys {
			if v >= 0.5 {
				out[i] = 1
			}
		}
		return out
	}
	trainY, testY := toInt(train.Y), toInt(test.Y)
	var out []Score
	for _, tech := range mlkit.AllTechniques() {
		acc, err := mlkit.EvaluateClassifier(tech.NewClassifier(seed), train.X, trainY, test.X, testY)
		if err != nil {
			return nil, fmt.Errorf("models: %s: %w", tech, err)
		}
		out = append(out, Score{tech, acc})
	}
	return out, nil
}

// Best returns the highest-scoring technique of a comparison.
func Best(scores []Score) Score {
	best := scores[0]
	for _, s := range scores[1:] {
		if s.Value > best.Value {
			best = s
		}
	}
	return best
}
