package models

import (
	"fmt"
	"math"

	"sturgeon/internal/hw"
	"sturgeon/internal/mlkit"
	"sturgeon/internal/power"
	"sturgeon/internal/workload"
)

// LSModels is the per-service model bundle: the three LS-side models of
// Fig. 5 without a BE counterpart. It backs the multi-application
// extension of §V-B, where each application is searched independently.
type LSModels struct {
	LS            workload.Profile
	Feasible      mlkit.Classifier
	Latency       mlkit.Regressor
	Power         mlkit.Regressor
	LatencyMargin float64
}

// FitLS fits the LS model bundle from a profiling sweep.
func FitLS(ls workload.Profile, d LSDatasets, seed int64) (*LSModels, error) {
	m := &LSModels{
		LS:            ls,
		Feasible:      mlkit.DT.NewClassifier(seed),
		Latency:       mlkit.KNN.NewRegressor(seed),
		Power:         mlkit.KNN.NewRegressor(seed),
		LatencyMargin: 0.85,
	}
	yc := make([]int, d.Perf.Len())
	for i, v := range d.Perf.Y {
		yc[i] = int(v)
	}
	if err := m.Feasible.Fit(d.Perf.X, yc); err != nil {
		return nil, fmt.Errorf("models: %s feasibility: %w", ls.Name, err)
	}
	if err := m.Latency.Fit(d.Latency.X, d.Latency.Y); err != nil {
		return nil, fmt.Errorf("models: %s latency: %w", ls.Name, err)
	}
	if err := m.Power.Fit(d.Power.X, d.Power.Y); err != nil {
		return nil, fmt.Errorf("models: %s power: %w", ls.Name, err)
	}
	return m, nil
}

// QoSOK mirrors Predictor.QoSOK for the standalone bundle.
func (m *LSModels) QoSOK(a hw.Alloc, qps float64) bool {
	if a.Cores <= 0 {
		return qps <= 0
	}
	feats := lsFeatures(a, qps)
	if m.Feasible.PredictClass(feats) != 1 {
		return false
	}
	pred := math.Pow(10, m.Latency.Predict(feats))
	return pred <= m.LatencyMargin*m.LS.QoSTargetS
}

// NodePowerW predicts the absolute node power of the service running
// alone under the allocation (platform idle included).
func (m *LSModels) NodePowerW(a hw.Alloc, qps float64) power.Watts {
	return power.Watts(m.Power.Predict(lsFeatures(a, qps)))
}

// BEModels is the per-application best-effort bundle.
type BEModels struct {
	BE         workload.Profile
	InputLevel int
	Thpt       mlkit.Regressor
	PowerInc   mlkit.Regressor
}

// FitBE fits the BE model bundle from a profiling sweep.
func FitBE(be workload.Profile, d BEDatasets, seed int64) (*BEModels, error) {
	m := &BEModels{
		BE:         be,
		InputLevel: be.InputLevel,
		Thpt:       mlkit.MLP.NewRegressor(seed),
		PowerInc:   mlkit.KNN.NewRegressor(seed),
	}
	if m.InputLevel == 0 {
		m.InputLevel = 3
	}
	if err := m.Thpt.Fit(d.Thpt.X, d.Thpt.Y); err != nil {
		return nil, fmt.Errorf("models: %s throughput: %w", be.Name, err)
	}
	if err := m.PowerInc.Fit(d.Power.X, d.Power.Y); err != nil {
		return nil, fmt.Errorf("models: %s power: %w", be.Name, err)
	}
	return m, nil
}

// Throughput mirrors Predictor.Throughput.
func (m *BEModels) Throughput(a hw.Alloc) float64 {
	if a.Cores <= 0 {
		return 0
	}
	v := m.Thpt.Predict(beFeatureVec(m.InputLevel, a))
	if v < 0 {
		v = 0
	}
	return v
}

// PowerIncW predicts the incremental node power of the allocation (the
// platform idle floor excluded).
func (m *BEModels) PowerIncW(a hw.Alloc) power.Watts {
	if a.Cores <= 0 {
		return 0
	}
	v := m.PowerInc.Predict(beFeatureVec(m.InputLevel, a))
	if v < 0 {
		v = 0
	}
	return power.Watts(v)
}
