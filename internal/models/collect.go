// Package models implements Sturgeon's online performance/power predictor
// (§V of the paper): per-application models trained offline on profiling
// sweeps, the Fig. 5 prediction API used by the configuration search and
// the balancer, and the §V-C technique comparison behind Figs. 6–7.
//
// Four models exist per co-location pair:
//
//   - LS performance — a binary classifier answering "does <C1,F1,L1> meet
//     the QoS target at this QPS?" (best technique: decision tree)
//   - LS power — a regressor for the node power running the LS service
//     alone under an allocation (best: KNN)
//   - BE performance — a regressor for best-effort throughput under an
//     allocation (best: KNN/MLP)
//   - BE power — a regressor for the *incremental* power of the BE
//     allocation (best: KNN)
//
// The features are the paper's Lasso-selected four: input size (QPS for
// LS services, the PARSEC input level for BE applications), core count,
// core frequency and LLC ways. Power labels use the peak reading over the
// sampling window, matching the paper's conservative peak-power training.
package models

import (
	"math"
	"math/rand"

	"sturgeon/internal/hw"
	"sturgeon/internal/sim"
	"sturgeon/internal/telemetry"
	"sturgeon/internal/workload"
)

// LSFeatureNames are the columns of LS datasets: the paper's four
// Lasso-selected features plus the engineered load-per-capacity column
// (see lsFeatures).
var LSFeatureNames = []string{"qps", "cores", "freq", "ways", "load_per_cap"}

// BEFeatureNames are the columns of BE datasets.
var BEFeatureNames = []string{"input", "cores", "freq", "ways", "capacity"}

// QoSGuardBand scales the QoS target when labelling training samples:
// a configuration counts as feasible only when its measured tail latency
// sits below GuardBand × target. The margin absorbs model error so that
// configurations the classifier accepts rarely violate the true target —
// the same conservatism the paper applies to power (peak-power labels).
const QoSGuardBand = 0.9

// CollectOptions shape a profiling sweep.
type CollectOptions struct {
	// Samples is the number of random configurations to measure
	// (default 1200).
	Samples int
	// IntervalsPerSample is how many 1 s intervals each configuration is
	// observed for; power labels take the peak over them (default 3).
	IntervalsPerSample int
	// Seed drives both the configuration sampling and measurement noise.
	Seed int64
	// MeanPowerLabels trains power models on interval-mean power instead
	// of the paper's conservative peak power (ablation, DESIGN.md §5.2).
	MeanPowerLabels bool
}

func (o CollectOptions) withDefaults() CollectOptions {
	if o.Samples <= 0 {
		o.Samples = 1200
	}
	if o.IntervalsPerSample <= 0 {
		o.IntervalsPerSample = 3
	}
	return o
}

// CollectLS sweeps random <cores, freq, ways> × QPS points for an LS
// service running alone on a profiling node and returns three datasets:
// perf with binary QoS-feasibility labels, pow with peak node power
// labels, and lat with log10 tail-latency labels. The latency dataset
// feeds the regression side of the Fig. 5 performance model ("predict
// the tail latency"), which the predictor cross-checks against the
// classifier.
func CollectLS(ls workload.Profile, opts CollectOptions) (perf, pow, lat telemetry.Dataset) {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	// The BE side of the node is irrelevant: zero cores.
	node := sim.ProfilingNode(ls, workload.Blackscholes(), opts.Seed+1)
	spec := node.Spec

	perfRec := telemetry.NewRecorder(LSFeatureNames...)
	powRec := telemetry.NewRecorder(LSFeatureNames...)
	latRec := telemetry.NewRecorder(LSFeatureNames...)
	for s := 0; s < opts.Samples; s++ {
		alloc := hw.Alloc{
			Cores:   1 + rng.Intn(spec.Cores),
			Freq:    spec.FreqAtLevel(rng.Intn(spec.NumFreqLevels())),
			LLCWays: 1 + rng.Intn(spec.LLCWays),
		}
		qps := (0.05 + 0.95*rng.Float64()) * ls.PeakQPS
		cfg := hw.Config{LS: alloc, BE: hw.Alloc{Freq: spec.FreqMin}}
		if err := node.Apply(cfg); err != nil {
			continue
		}
		node.ResetQueue()
		feats := lsFeatures(alloc, qps)
		var worstP95, peakW, sumW float64
		for i := 0; i < opts.IntervalsPerSample; i++ {
			st := node.Step(float64(s*opts.IntervalsPerSample+i), qps)
			if st.P95 > worstP95 {
				worstP95 = st.P95
			}
			if float64(st.Power) > peakW {
				peakW = float64(st.Power)
			}
			sumW += float64(st.Power)
		}
		ok := 0.0
		if worstP95 <= QoSGuardBand*ls.QoSTargetS {
			ok = 1
		}
		powLabel := peakW
		if opts.MeanPowerLabels {
			powLabel = sumW / float64(opts.IntervalsPerSample)
		}
		_ = perfRec.Add(feats, ok)
		_ = powRec.Add(feats, powLabel)
		_ = latRec.Add(feats, math.Log10(math.Max(worstP95, 1e-6)))
	}
	return perfRec.Dataset(), powRec.Dataset(), latRec.Dataset()
}

// CollectBE sweeps random <cores, freq, ways> × input-level points for a
// BE application running alone and returns throughput and incremental
// power datasets. Incremental power excludes the platform idle floor, so
// summing an LS power prediction and a BE power prediction approximates
// co-located node power (Fig. 5's composition).
func CollectBE(be workload.Profile, opts CollectOptions) (thpt, pow telemetry.Dataset) {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))

	thptRec := telemetry.NewRecorder(BEFeatureNames...)
	powRec := telemetry.NewRecorder(BEFeatureNames...)
	for s := 0; s < opts.Samples; s++ {
		level := 1 + rng.Intn(6)
		leveled := be.WithInput(level)
		node := sim.ProfilingNode(workload.Memcached(), leveled, opts.Seed+int64(s)+1)
		spec := node.Spec
		alloc := hw.Alloc{
			Cores:   1 + rng.Intn(spec.Cores),
			Freq:    spec.FreqAtLevel(rng.Intn(spec.NumFreqLevels())),
			LLCWays: 1 + rng.Intn(spec.LLCWays),
		}
		cfg := hw.Config{LS: hw.Alloc{Freq: spec.FreqMin}, BE: alloc}
		if err := node.Apply(cfg); err != nil {
			continue
		}
		feats := beFeatureVec(level, alloc)
		var sumT, peakW, sumW float64
		for i := 0; i < opts.IntervalsPerSample; i++ {
			st := node.Step(float64(i), 0)
			sumT += st.BEThroughputUPS
			if float64(st.Power) > peakW {
				peakW = float64(st.Power)
			}
			sumW += float64(st.Power)
		}
		powLabel := peakW
		if opts.MeanPowerLabels {
			powLabel = sumW / float64(opts.IntervalsPerSample)
		}
		inc := powLabel - float64(node.PowerParams.IdleW)
		if inc < 0 {
			inc = 0
		}
		// Throughput instrumentation (IPC counters) carries a few percent
		// of measurement noise, like the latency and power channels.
		meas := sumT / float64(opts.IntervalsPerSample) * (1 + 0.02*rng.NormFloat64())
		_ = thptRec.Add(feats, meas)
		_ = powRec.Add(feats, inc)
	}
	return thptRec.Dataset(), powRec.Dataset()
}
