package models

import (
	"fmt"
	"math"
	"sync/atomic"

	"sturgeon/internal/hw"
	"sturgeon/internal/mlkit"
	"sturgeon/internal/power"
	"sturgeon/internal/telemetry"
	"sturgeon/internal/workload"
)

// Predictor is the Fig. 5 prediction engine for one co-location pair: it
// answers QoS feasibility for the LS service, throughput for the BE
// application, and total node power for a full configuration.
type Predictor struct {
	LS workload.Profile
	BE workload.Profile
	// InputLevel is the BE input-size feature used at prediction time
	// (the level the co-located BE application actually runs).
	InputLevel int

	LSFeasible mlkit.Classifier
	// LSLatency predicts log10 of the tail latency; QoSOK requires both
	// the classifier's verdict and a predicted latency safely below the
	// target. The dual check keeps the §V-B binary search off the
	// residual error islands any single learned model has exactly at the
	// feasibility boundary it optimizes against.
	LSLatency mlkit.Regressor
	LSPower   mlkit.Regressor
	BEThpt    mlkit.Regressor
	BEPower   mlkit.Regressor

	// LatencyMargin is the fraction of the QoS target the latency
	// regressor's prediction must stay below (default 0.85, just inside
	// the label guard band). It must stay above the service's intrinsic
	// p95/target floor or no configuration can ever qualify.
	LatencyMargin float64

	// IdleW is the platform idle power added back when composing total
	// power from the LS (absolute) and BE (incremental) models.
	// The LS model's label already contains it, so composition is
	// LSPower + BEPower (incremental).
	queries atomic.Int64
}

// TrainOptions configures Train.
type TrainOptions struct {
	Collect CollectOptions
	// AutoSelect picks the best technique per model on a validation split
	// instead of the fixed defaults — the paper's deployment mode ("all
	// offline-trained models are stored on the server and the most
	// suitable one can be deployed", §V-C).
	AutoSelect bool
	// Techniques override the per-model defaults (the paper's testbed
	// winners: DT for LS feasibility, MLP for BE throughput, KNN for power). Empty strings
	// keep the defaults. Ignored when AutoSelect is set.
	LSFeasibleTech mlkit.Technique
	LSPowerTech    mlkit.Technique
	BEThptTech     mlkit.Technique
	BEPowerTech    mlkit.Technique
}

// LSDatasets bundles the three profiling datasets of one LS service.
type LSDatasets struct {
	Perf, Power, Latency telemetry.Dataset
}

// BEDatasets bundles the two profiling datasets of one BE application.
type BEDatasets struct {
	Thpt, Power telemetry.Dataset
}

// SweepLS runs the LS profiling sweep once; the result can train
// predictors for every pair the service participates in.
func SweepLS(ls workload.Profile, opts CollectOptions) LSDatasets {
	perf, pow, lat := CollectLS(ls, opts)
	return LSDatasets{Perf: perf, Power: pow, Latency: lat}
}

// SweepBE runs the BE profiling sweep once.
func SweepBE(be workload.Profile, opts CollectOptions) BEDatasets {
	thpt, pow := CollectBE(be, opts)
	return BEDatasets{Thpt: thpt, Power: pow}
}

// Train collects profiling sweeps for both applications and fits the four
// models, using the technique each model family won with in §V-C (or a
// validation-selected technique with AutoSelect).
func Train(ls, be workload.Profile, opts TrainOptions) (*Predictor, error) {
	return TrainFromDatasets(ls, be, SweepLS(ls, opts.Collect), SweepBE(be, opts.Collect), opts)
}

// TrainFromDatasets fits the predictor from pre-collected sweeps, letting
// callers share per-application datasets across the 18 co-location pairs.
func TrainFromDatasets(ls, be workload.Profile, lds LSDatasets, bds BEDatasets, opts TrainOptions) (*Predictor, error) {
	perfDS, lsPowDS, latDS := lds.Perf, lds.Power, lds.Latency
	thptDS, bePowDS := bds.Thpt, bds.Power

	seed := opts.Collect.Seed
	pick := func(t, def mlkit.Technique) mlkit.Technique {
		if t == "" {
			return def
		}
		return t
	}
	lsFeasT := pick(opts.LSFeasibleTech, mlkit.DT)
	lsPowT := pick(opts.LSPowerTech, mlkit.KNN)
	beThptT := pick(opts.BEThptTech, mlkit.MLP)
	bePowT := pick(opts.BEPowerTech, mlkit.KNN)
	if opts.AutoSelect {
		if s, err := CompareClassification(perfDS, seed); err == nil {
			lsFeasT = Best(s).Technique
		}
		if s, err := CompareRegression(lsPowDS, seed); err == nil {
			lsPowT = Best(s).Technique
		}
		if s, err := CompareRegression(thptDS, seed); err == nil {
			beThptT = Best(s).Technique
		}
		if s, err := CompareRegression(bePowDS, seed); err == nil {
			bePowT = Best(s).Technique
		}
	}
	p := &Predictor{
		LS: ls, BE: be, InputLevel: be.InputLevel,
		LSFeasible:    lsFeasT.NewClassifier(seed),
		LSLatency:     mlkit.KNN.NewRegressor(seed),
		LSPower:       lsPowT.NewRegressor(seed),
		BEThpt:        beThptT.NewRegressor(seed),
		BEPower:       bePowT.NewRegressor(seed),
		LatencyMargin: 0.85,
	}
	if p.InputLevel == 0 {
		p.InputLevel = 3
	}
	if err := p.LSLatency.Fit(latDS.X, latDS.Y); err != nil {
		return nil, fmt.Errorf("models: LS latency fit: %w", err)
	}

	yc := make([]int, perfDS.Len())
	for i, v := range perfDS.Y {
		yc[i] = int(v)
	}
	if err := p.LSFeasible.Fit(perfDS.X, yc); err != nil {
		return nil, fmt.Errorf("models: LS feasibility fit: %w", err)
	}
	if err := p.LSPower.Fit(lsPowDS.X, lsPowDS.Y); err != nil {
		return nil, fmt.Errorf("models: LS power fit: %w", err)
	}
	if err := p.BEThpt.Fit(thptDS.X, thptDS.Y); err != nil {
		return nil, fmt.Errorf("models: BE throughput fit: %w", err)
	}
	if err := p.BEPower.Fit(bePowDS.X, bePowDS.Y); err != nil {
		return nil, fmt.Errorf("models: BE power fit: %w", err)
	}
	return p, nil
}

// lsFeatures builds the LS feature vector: the four Lasso-selected raw
// features plus an engineered load-per-capacity column. The derived
// feature folds the operator's knowledge of the machine (hyper-threading
// geometry) into the design matrix, which linearizes the saturation
// boundary the feasibility classifier must learn — without it, the
// binary search of §V-B would home in on the classifier's residual
// error islands.
func lsFeatures(a hw.Alloc, qps float64) []float64 {
	capacity := workload.EffectiveParallelism(a.Cores) * float64(a.Freq)
	if capacity < 1e-9 {
		capacity = 1e-9
	}
	return []float64{qps, float64(a.Cores), float64(a.Freq), float64(a.LLCWays), qps / capacity}
}

// beFeatureVec builds the BE feature vector (input level, raw allocation,
// and the same engineered capacity column).
func beFeatureVec(level int, a hw.Alloc) []float64 {
	capacity := workload.EffectiveParallelism(a.Cores) * float64(a.Freq)
	return []float64{float64(level), float64(a.Cores), float64(a.Freq), float64(a.LLCWays), capacity}
}

// beFeatures builds the BE feature vector at the predictor's input level.
func (p *Predictor) beFeatures(a hw.Alloc) []float64 {
	return beFeatureVec(p.InputLevel, a)
}

// QoSOK predicts whether the LS allocation meets the QoS target at qps:
// the feasibility classifier must agree AND the latency regressor must
// place the tail latency a margin below the target.
func (p *Predictor) QoSOK(a hw.Alloc, qps float64) bool {
	if a.Cores <= 0 {
		return qps <= 0
	}
	feats := lsFeatures(a, qps)
	p.queries.Add(1)
	if p.LSFeasible.PredictClass(feats) != 1 {
		return false
	}
	if p.LSLatency != nil {
		margin := p.LatencyMargin
		if margin <= 0 {
			margin = 0.85
		}
		p.queries.Add(1)
		pred := math.Pow(10, p.LSLatency.Predict(feats))
		if pred > margin*p.LS.QoSTargetS {
			return false
		}
	}
	return true
}

// Throughput predicts the BE application's progress under an allocation.
func (p *Predictor) Throughput(a hw.Alloc) float64 {
	if a.Cores <= 0 {
		return 0
	}
	p.queries.Add(1)
	v := p.BEThpt.Predict(p.beFeatures(a))
	if v < 0 {
		v = 0
	}
	return v
}

// ThroughputBatch predicts BE progress for a whole candidate frontier
// in one call, appending one value per allocation to dst — the batched
// counterpart of Throughput (core.BatchPredictor). Values are bit
// identical to point-wise calls, and the query counter advances by the
// same total: one per allocation with running cores.
func (p *Predictor) ThroughputBatch(allocs []hw.Alloc, dst []float64) []float64 {
	n := 0
	for _, a := range allocs {
		if a.Cores > 0 {
			n++
		}
	}
	if n == 0 {
		for range allocs {
			dst = append(dst, 0)
		}
		return dst
	}
	p.queries.Add(int64(n))
	X := make([][]float64, 0, n)
	for _, a := range allocs {
		if a.Cores > 0 {
			X = append(X, p.beFeatures(a))
		}
	}
	scores := mlkit.PredictBatch(p.BEThpt, X, make([]float64, 0, n))
	j := 0
	for _, a := range allocs {
		if a.Cores <= 0 {
			dst = append(dst, 0)
			continue
		}
		v := scores[j]
		j++
		if v < 0 {
			v = 0
		}
		dst = append(dst, v)
	}
	return dst
}

// PowerW predicts total node power for a configuration at qps: the LS
// model's absolute node power plus the BE model's incremental power.
func (p *Predictor) PowerW(cfg hw.Config, qps float64) power.Watts {
	p.queries.Add(1)
	total := p.LSPower.Predict(lsFeatures(cfg.LS, qps))
	if cfg.BE.Cores > 0 {
		p.queries.Add(1)
		inc := p.BEPower.Predict(p.beFeatures(cfg.BE))
		if inc > 0 {
			total += inc
		}
	}
	return power.Watts(total)
}

// Feasible predicts whether a full configuration meets both the QoS
// target and the power budget — the §V-B feasibility check.
func (p *Predictor) Feasible(cfg hw.Config, qps float64, budget power.Watts) bool {
	return p.QoSOK(cfg.LS, qps) && p.PowerW(cfg, qps) <= budget
}

// Queries returns the number of model invocations so far (the paper
// counts these to bound search overhead, §VII-E).
func (p *Predictor) Queries() int64 { return p.queries.Load() }
