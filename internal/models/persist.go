package models

import (
	"fmt"
	"os"
	"path/filepath"

	"sturgeon/internal/jsonio"
	"sturgeon/internal/mlkit"
	"sturgeon/internal/workload"
)

// Predictor persistence: §V-A trains the models offline and §V-C stores
// them on the server. Save writes the five fitted models plus a metadata
// manifest into a directory; LoadPredictor restores a ready-to-serve
// predictor without re-running the profiling sweeps. The manifest goes
// through the shared schema-validating JSON layer (internal/jsonio), so
// a truncated or foreign document is rejected before any model loads.

const manifestName = "predictor.json"

// ManifestSchema tags the predictor manifest document.
const ManifestSchema = "sturgeon/predictor-manifest/v1"

type manifest struct {
	Schema        string  `json:"schema"`
	LSName        string  `json:"ls"`
	BEName        string  `json:"be"`
	InputLevel    int     `json:"input_level"`
	LatencyMargin float64 `json:"latency_margin"`
}

// Validate implements jsonio.Validator.
func (m *manifest) Validate() error {
	switch {
	case m.Schema != ManifestSchema:
		return fmt.Errorf("models: manifest schema %q, want %q", m.Schema, ManifestSchema)
	case m.LSName == "" || m.BEName == "":
		return fmt.Errorf("models: manifest without application names")
	case m.InputLevel < 0:
		return fmt.Errorf("models: manifest input level %d < 0", m.InputLevel)
	case m.LatencyMargin < 0:
		return fmt.Errorf("models: manifest latency margin %v < 0", m.LatencyMargin)
	}
	return nil
}

var modelFiles = []string{"ls_feasible", "ls_latency", "ls_power", "be_thpt", "be_power"}

// Save writes the predictor's models and manifest into dir (created if
// missing).
func (p *Predictor) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	save := func(name string, m interface{}) error {
		f, err := os.Create(filepath.Join(dir, name+".model"))
		if err != nil {
			return err
		}
		defer f.Close()
		if err := mlkit.Save(f, m); err != nil {
			return fmt.Errorf("models: saving %s: %w", name, err)
		}
		return nil
	}
	for name, m := range map[string]interface{}{
		"ls_feasible": p.LSFeasible,
		"ls_latency":  p.LSLatency,
		"ls_power":    p.LSPower,
		"be_thpt":     p.BEThpt,
		"be_power":    p.BEPower,
	} {
		if err := save(name, m); err != nil {
			return err
		}
	}
	mf := manifest{
		Schema: ManifestSchema,
		LSName: p.LS.Name, BEName: p.BE.Name,
		InputLevel: p.InputLevel, LatencyMargin: p.LatencyMargin,
	}
	return jsonio.WriteFile(filepath.Join(dir, manifestName), &mf)
}

// LoadPredictor restores a predictor saved with Save. The manifest's
// application names must resolve in the workload registry (custom
// profiles can be patched onto the returned predictor afterwards).
func LoadPredictor(dir string) (*Predictor, error) {
	var mf manifest
	if err := jsonio.ReadFile(filepath.Join(dir, manifestName), &mf); err != nil {
		return nil, fmt.Errorf("models: manifest: %w", err)
	}
	ls, ok := workload.ByName(mf.LSName)
	if !ok {
		return nil, fmt.Errorf("models: unknown LS service %q in manifest", mf.LSName)
	}
	be, ok := workload.ByName(mf.BEName)
	if !ok {
		return nil, fmt.Errorf("models: unknown BE application %q in manifest", mf.BEName)
	}
	p := &Predictor{
		LS: ls, BE: be,
		InputLevel: mf.InputLevel, LatencyMargin: mf.LatencyMargin,
	}
	loadR := func(name string) (mlkit.Regressor, error) {
		f, err := os.Open(filepath.Join(dir, name+".model"))
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return mlkit.LoadRegressor(f)
	}
	f, err := os.Open(filepath.Join(dir, "ls_feasible.model"))
	if err != nil {
		return nil, err
	}
	p.LSFeasible, err = mlkit.LoadClassifier(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	if p.LSLatency, err = loadR("ls_latency"); err != nil {
		return nil, err
	}
	if p.LSPower, err = loadR("ls_power"); err != nil {
		return nil, err
	}
	if p.BEThpt, err = loadR("be_thpt"); err != nil {
		return nil, err
	}
	if p.BEPower, err = loadR("be_power"); err != nil {
		return nil, err
	}
	return p, nil
}
