package workload

import (
	"math"
	"testing"
)

func TestConstant(t *testing.T) {
	tr := Constant(0.35)
	for _, x := range []float64{-5, 0, 100, 1e6} {
		if tr(x) != 0.35 {
			t.Errorf("Constant(0.35)(%v) = %v", x, tr(x))
		}
	}
}

func TestTriangleShape(t *testing.T) {
	tr := Triangle(0.2, 0.8, 600)
	if got := tr(0); got != 0.2 {
		t.Errorf("start = %v, want 0.2", got)
	}
	if got := tr(300); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("midpoint = %v, want 0.8", got)
	}
	if got := tr(600); got != 0.2 {
		t.Errorf("end = %v, want 0.2", got)
	}
	if got := tr(150); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("quarter = %v, want 0.5", got)
	}
	if got := tr(450); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("three-quarter = %v, want 0.5", got)
	}
	if tr(-10) != 0.2 || tr(700) != 0.2 {
		t.Error("out-of-range times should hold the boundary value")
	}
}

func TestRampShape(t *testing.T) {
	tr := Ramp(0.2, 0.5, 400)
	if tr(0) != 0.2 || tr(400) != 0.5 || tr(1000) != 0.5 {
		t.Error("ramp endpoints wrong")
	}
	if got := tr(200); math.Abs(got-0.35) > 1e-12 {
		t.Errorf("ramp midpoint = %v, want 0.35", got)
	}
	prev := -1.0
	for x := 0.0; x <= 400; x += 10 {
		v := tr(x)
		if v < prev {
			t.Fatalf("ramp decreased at %v", x)
		}
		prev = v
	}
}

func TestDiurnalShape(t *testing.T) {
	tr := Diurnal(0.2, 1.0, 86400)
	if got := tr(0); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("trough = %v, want 0.2", got)
	}
	if got := tr(43200); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("midday = %v, want 1.0", got)
	}
	if got := tr(86400); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("full period = %v, want 0.2", got)
	}
	for x := 0.0; x < 86400; x += 3600 {
		v := tr(x)
		if v < 0.2-1e-9 || v > 1.0+1e-9 {
			t.Fatalf("diurnal out of range at %v: %v", x, v)
		}
	}
}

func TestSteps(t *testing.T) {
	tr := Steps([]float64{0.2, 0.5, 0.8}, 10)
	cases := map[float64]float64{0: 0.2, 9.9: 0.2, 10: 0.5, 25: 0.8, 30: 0.2, -1: 0.2}
	for x, want := range cases {
		if got := tr(x); got != want {
			t.Errorf("Steps(%v) = %v, want %v", x, got, want)
		}
	}
	if got := Steps(nil, 10)(5); got != 0 {
		t.Errorf("empty Steps = %v, want 0", got)
	}
}

func TestClamped(t *testing.T) {
	tr := Clamped(func(t float64) float64 { return t })
	if tr(-3) != 0 || tr(0.5) != 0.5 || tr(7) != 1 {
		t.Error("Clamped does not clamp to [0,1]")
	}
}

func TestStairMatchesStepsAndDeclaresBreaks(t *testing.T) {
	s := Stair{Levels: []float64{0.2, 0.5, 0.3}, StepDurS: 10}
	tr := s.Trace()
	// In the cluster engine's sampling convention step s reads tr(s+1);
	// the value at step s may differ from step s-1 only at declared
	// breaks. This is the exact contract TraceBreaks relies on.
	breaks := map[int]bool{}
	for _, b := range s.BreakSteps(60) {
		breaks[b] = true
	}
	prev := tr(1)
	for step := 1; step < 60; step++ {
		v := tr(float64(step + 1))
		if v != prev && !breaks[step] {
			t.Fatalf("trace moved at undeclared step %d (%v -> %v)", step, prev, v)
		}
		prev = v
	}
	// Step 59 reads tr(60) — the first second of the next tread — so the
	// last in-horizon edge is declared too.
	want := []int{0, 9, 19, 29, 39, 49, 59}
	got := s.BreakSteps(60)
	if len(got) != len(want) {
		t.Fatalf("BreakSteps = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BreakSteps = %v, want %v", got, want)
		}
	}
	if tr(5) != 0.2 || tr(15) != 0.5 || tr(25) != 0.3 || tr(35) != 0.2 {
		t.Fatal("stair levels wrong")
	}
	// Degenerate tread width clamps to 1 s.
	if b := (Stair{Levels: []float64{1}, StepDurS: 0}).BreakSteps(3); len(b) != 3 {
		t.Fatalf("zero-width stair breaks = %v, want one per second", b)
	}
}
