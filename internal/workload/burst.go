package workload

import (
	"math"
	"math/rand"
)

// BurstSpec describes a seeded flash-crowd load generator — the first
// slice of the workload-v2 scenario compiler. The base load is a
// quantized diurnal staircase; on top of it a fixed number of flash
// crowds fire at seeded times with heavy-tailed (Pareto) amplitudes,
// each ramping up fast, holding, and decaying away. The compiled trace
// is piecewise-constant per second and *declares* its change points,
// so the event-driven cluster engine can skip the flat stretches while
// surges still wake every node.
type BurstSpec struct {
	// BaseLo/BaseHi bound the diurnal base band (fractions of peak);
	// PeriodS is the diurnal period and BaseTreadS the quantization
	// tread width in seconds (default 60).
	BaseLo, BaseHi float64
	PeriodS        float64
	BaseTreadS     int

	// Bursts is the number of flash crowds over the horizon. Each
	// amplitude is AmpMin·U^(−1/Alpha) (Pareto with tail exponent
	// Alpha, heavier for smaller Alpha), clamped to AmpMax. RampS,
	// HoldS and DecayS shape one crowd in seconds.
	Bursts int
	AmpMin float64
	AmpMax float64
	Alpha  float64
	RampS  int
	HoldS  int
	DecayS int

	// Seed drives burst times and amplitudes; equal specs compile to
	// byte-identical traces.
	Seed int64
}

// FlashCrowd is a compiled BurstSpec: one load fraction per simulated
// second, quantized so identical plateaus compare exactly equal.
type FlashCrowd struct {
	// Levels[s] is the load fraction in force at step s (the interval
	// ending at t = s+1).
	Levels []float64
}

// Build compiles the spec over a horizon of durationS seconds.
func (s BurstSpec) Build(durationS int) FlashCrowd {
	if durationS <= 0 {
		return FlashCrowd{}
	}
	tread := s.BaseTreadS
	if tread < 1 {
		tread = 60
	}
	alpha := s.Alpha
	if alpha <= 0 {
		alpha = 1.5
	}
	ampMax := s.AmpMax
	if ampMax <= 0 {
		ampMax = 1
	}
	rng := rand.New(rand.NewSource(s.Seed))

	levels := make([]float64, durationS)
	base := Diurnal(s.BaseLo, s.BaseHi, s.PeriodS)
	for t := 0; t < durationS; t += tread {
		v := base(float64(t))
		for u := t; u < t+tread && u < durationS; u++ {
			levels[u] = v
		}
	}

	type crowd struct {
		start int
		amp   float64
	}
	crowds := make([]crowd, 0, s.Bursts)
	for i := 0; i < s.Bursts; i++ {
		start := rng.Intn(durationS)
		amp := s.AmpMin * math.Pow(rng.Float64(), -1/alpha)
		if amp > ampMax {
			amp = ampMax
		}
		crowds = append(crowds, crowd{start: start, amp: amp})
	}
	ramp, hold, decay := s.RampS, s.HoldS, s.DecayS
	if ramp < 1 {
		ramp = 1
	}
	if decay < 1 {
		decay = 1
	}
	for _, c := range crowds {
		for dt := 0; dt < ramp+hold+decay; dt++ {
			t := c.start + dt
			if t >= durationS {
				break
			}
			var f float64
			switch {
			case dt < ramp:
				f = float64(dt+1) / float64(ramp)
			case dt < ramp+hold:
				f = 1
			default:
				f = 1 - float64(dt-ramp-hold+1)/float64(decay)
			}
			levels[t] += c.amp * f
		}
	}

	for t, v := range levels {
		if v < 0 {
			v = 0
		}
		if v > ampMax {
			v = ampMax
		}
		// Quantize so equal plateaus are exactly equal and the break
		// list below is exact.
		levels[t] = math.Round(v*1e4) / 1e4
	}
	return FlashCrowd{Levels: levels}
}

// Trace returns the compiled levels as an ordinary Trace in the
// cluster engine's sampling convention (Levels[s] is read at t = s+1).
func (f FlashCrowd) Trace() Trace {
	return func(t float64) float64 {
		if len(f.Levels) == 0 {
			return 0
		}
		i := int(math.Ceil(t)) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(f.Levels) {
			i = len(f.Levels) - 1
		}
		return f.Levels[i]
	}
}

// BreakSteps returns step 0 plus every step whose level differs from
// the previous one — the Cluster.TraceBreaks contract (see
// Stair.BreakSteps).
func (f FlashCrowd) BreakSteps(durationS int) []int {
	n := durationS
	if n > len(f.Levels) {
		n = len(f.Levels)
	}
	breaks := []int{0}
	for s := 1; s < n; s++ {
		if f.Levels[s] != f.Levels[s-1] {
			breaks = append(breaks, s)
		}
	}
	return breaks
}
