package workload

import (
	"sturgeon/internal/cache"
	"sturgeon/internal/hw"
)

// BEState is the steady-state execution of a BE application under an
// allocation and a given memory-contention multiplier.
type BEState struct {
	// ThroughputUPS is best-effort progress in work units per second.
	ThroughputUPS float64
	// IPS is aggregate instructions per second.
	IPS float64
	// BandwidthGBs is the DRAM traffic the application generates.
	BandwidthGBs float64
	// Util is the busy fraction of allocated cores (1 for BE: it always
	// has work, diluted only by its scalability loss).
	Util float64
	// CPI is the effective cycles per instruction.
	CPI float64
	// MPKI is the effective miss density at the allocated ways.
	MPKI float64
}

// BERate evaluates the BE profile on an allocation. BE applications spin
// on all allocated cores, so Util reflects only scaling inefficiency.
func (p Profile) BERate(a hw.Alloc, contention float64) BEState {
	if a.Cores <= 0 {
		return BEState{}
	}
	mpki := p.MRC.MPKI(a.LLCWays)
	cpi := p.CPI.CPI(a.Freq, mpki, contention)
	perCoreIPS := float64(a.Freq) * 1e9 / cpi
	eff := p.Speedup(a.Cores)
	ips := eff * perCoreIPS
	return BEState{
		ThroughputUPS: ips / p.InstrPerUnit,
		IPS:           ips,
		BandwidthGBs:  cache.BandwidthGBs(ips, mpki),
		Util:          eff / float64(a.Cores),
		CPI:           cpi,
		MPKI:          mpki,
	}
}

// LSState is the steady-state execution of an LS service at a load.
type LSState struct {
	// SvcMean is the mean per-query service time in seconds under the
	// allocation (before queueing).
	SvcMean float64
	// Rho is the offered utilization λ·S/C.
	Rho float64
	// Util is the busy fraction of allocated cores (= min(Rho,1)).
	Util float64
	// IPS is aggregate instructions per second actually executed.
	IPS float64
	// BandwidthGBs is the DRAM traffic generated.
	BandwidthGBs float64
	// CPI is the effective cycles per instruction.
	CPI float64
	// MPKI is the effective miss density.
	MPKI float64
}

// LSRate evaluates the LS profile on an allocation at qps offered load.
func (p Profile) LSRate(a hw.Alloc, qps, contention float64) LSState {
	if a.Cores <= 0 {
		return LSState{}
	}
	mpki := p.MRC.MPKI(a.LLCWays)
	cpi := p.CPI.CPI(a.Freq, mpki, contention)
	svc := p.InstrPerQuery * cpi / (float64(a.Freq) * 1e9)
	// Hyper-threading: logical cores beyond the physical count add less
	// than a full server's capacity. Queueing keeps a.Cores servers but
	// each runs at the HT-diluted speed.
	svc *= float64(a.Cores) / EffectiveParallelism(a.Cores)
	rho := qps * svc / float64(a.Cores)
	util := rho
	effQPS := qps
	if util > 1 {
		util = 1
		// Saturated: the service completes only what capacity allows.
		effQPS = float64(a.Cores) / svc
	}
	ips := effQPS * p.InstrPerQuery
	return LSState{
		SvcMean:      svc,
		Rho:          rho,
		Util:         util,
		IPS:          ips,
		BandwidthGBs: cache.BandwidthGBs(ips, mpki),
		CPI:          cpi,
		MPKI:         mpki,
	}
}
