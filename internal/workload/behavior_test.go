package workload

import (
	"math"
	"testing"

	"sturgeon/internal/hw"
)

func TestBERateZeroCores(t *testing.T) {
	bs := Blackscholes()
	st := bs.BERate(hw.Alloc{Cores: 0, Freq: 2.2, LLCWays: 10}, 1)
	if st.ThroughputUPS != 0 || st.IPS != 0 {
		t.Errorf("zero-core BE state = %+v, want zeros", st)
	}
}

func TestBERateMonotoneInResources(t *testing.T) {
	for _, p := range BEApps() {
		base := p.BERate(hw.Alloc{Cores: 8, Freq: 1.6, LLCWays: 8}, 1).ThroughputUPS
		moreCores := p.BERate(hw.Alloc{Cores: 12, Freq: 1.6, LLCWays: 8}, 1).ThroughputUPS
		moreFreq := p.BERate(hw.Alloc{Cores: 8, Freq: 2.0, LLCWays: 8}, 1).ThroughputUPS
		moreWays := p.BERate(hw.Alloc{Cores: 8, Freq: 1.6, LLCWays: 16}, 1).ThroughputUPS
		if moreCores <= base || moreFreq <= base || moreWays < base {
			t.Errorf("%s: throughput not monotone: base %v cores %v freq %v ways %v",
				p.Name, base, moreCores, moreFreq, moreWays)
		}
	}
}

func TestBERateContentionHurts(t *testing.T) {
	rt := Raytrace()
	free := rt.BERate(hw.Alloc{Cores: 8, Freq: 2.0, LLCWays: 8}, 1)
	cont := rt.BERate(hw.Alloc{Cores: 8, Freq: 2.0, LLCWays: 8}, 2)
	if cont.ThroughputUPS >= free.ThroughputUPS {
		t.Error("memory contention did not reduce throughput")
	}
	if cont.CPI <= free.CPI {
		t.Error("memory contention did not raise CPI")
	}
}

// TestCoreVsFrequencyPreference pins the resource-preference spectrum the
// paper's Fig. 3 turns on: under the 35 %-load configuration pair
// (8 cores @2.2 GHz vs 12 cores @1.4 GHz), compute-bound applications
// prefer the frequency-rich option while the memory-bound pipeline ferret
// prefers the core-rich option.
func TestCoreVsFrequencyPreference(t *testing.T) {
	coreRich := hw.Alloc{Cores: 12, Freq: 1.4, LLCWays: 10}
	freqRich := hw.Alloc{Cores: 8, Freq: 2.2, LLCWays: 10}
	prefersCores := map[string]bool{"fe": true}
	for _, p := range BEApps() {
		tc := p.BERate(coreRich, 1).ThroughputUPS
		tf := p.BERate(freqRich, 1).ThroughputUPS
		if prefersCores[p.Name] {
			if tc <= tf {
				t.Errorf("%s should prefer cores at this pair: cores %v <= freq %v", p.Name, tc, tf)
			}
		} else if tf <= tc {
			t.Errorf("%s should prefer frequency at this pair: freq %v <= cores %v", p.Name, tf, tc)
		}
	}
}

// TestMoreCoresWinAtLowLoadPair mirrors the 20 %-load pair of Fig. 3
// (16 cores @1.8 GHz vs 12 cores @2.2 GHz): with that much parallelism on
// offer, every BE application profits more from cores.
func TestMoreCoresWinAtLowLoadPair(t *testing.T) {
	coreRich := hw.Alloc{Cores: 16, Freq: 1.8, LLCWays: 14}
	freqRich := hw.Alloc{Cores: 12, Freq: 2.2, LLCWays: 13}
	for _, p := range BEApps() {
		tc := p.BERate(coreRich, 1).ThroughputUPS
		tf := p.BERate(freqRich, 1).ThroughputUPS
		if tc <= tf {
			t.Errorf("%s: 16C@1.8 %v not above 12C@2.2 %v", p.Name, tc, tf)
		}
	}
}

func TestLSRateUtilizationAndSaturation(t *testing.T) {
	mc := Memcached()
	a := hw.Alloc{Cores: 4, Freq: 1.6, LLCWays: 6}
	st := mc.LSRate(a, 0.2*mc.PeakQPS, 1)
	if st.Rho <= 0 || st.Rho >= 1 {
		t.Errorf("memcached at 20%% load on 4C@1.6/6L: rho = %v, want busy but stable", st.Rho)
	}
	// Saturation: throughput clips at capacity.
	sat := mc.LSRate(a, mc.PeakQPS, 1)
	if sat.Rho <= 1 {
		t.Errorf("peak load on 4 cores should saturate, rho = %v", sat.Rho)
	}
	if sat.Util != 1 {
		t.Errorf("saturated util = %v, want 1", sat.Util)
	}
	if sat.IPS >= mc.PeakQPS*mc.InstrPerQuery {
		t.Error("saturated service executed more than capacity")
	}
}

func TestLSRateScalesWithResources(t *testing.T) {
	for _, p := range LSServices() {
		qps := 0.4 * p.PeakQPS
		slow := p.LSRate(hw.Alloc{Cores: 8, Freq: 1.2, LLCWays: 6}, qps, 1)
		fast := p.LSRate(hw.Alloc{Cores: 8, Freq: 2.2, LLCWays: 6}, qps, 1)
		if fast.SvcMean >= slow.SvcMean {
			t.Errorf("%s: higher frequency did not shorten service time", p.Name)
		}
		cached := p.LSRate(hw.Alloc{Cores: 8, Freq: 1.2, LLCWays: 18}, qps, 1)
		if cached.SvcMean >= slow.SvcMean {
			t.Errorf("%s: more ways did not shorten service time", p.Name)
		}
		wide := p.LSRate(hw.Alloc{Cores: 16, Freq: 1.2, LLCWays: 6}, qps, 1)
		if wide.Rho >= slow.Rho {
			t.Errorf("%s: more cores did not reduce utilization", p.Name)
		}
	}
}

func TestLSPeakFeasibleOnWholeMachine(t *testing.T) {
	// The paper sizes the power budget at the LS service's peak load on
	// the whole machine — which therefore must be comfortably stable.
	s := hw.DefaultSpec()
	for _, p := range LSServices() {
		st := p.LSRate(hw.Alloc{Cores: s.Cores, Freq: s.FreqMax, LLCWays: s.LLCWays}, p.PeakQPS, 1)
		if st.Rho >= 0.75 {
			t.Errorf("%s at peak on whole machine: rho = %v, want < 0.75", p.Name, st.Rho)
		}
		if st.Rho <= 0.2 {
			t.Errorf("%s at peak on whole machine: rho = %v, implausibly idle", p.Name, st.Rho)
		}
	}
}

func TestJustEnoughNeighborhoodMatchesPaperNarrative(t *testing.T) {
	// §III-B: "at 20%% of the peak load, 4 cores at 1.6 GHz and 6 LLC ways
	// are enough for memcached, while 4 cores at 1.8 GHz and 5 LLC ways
	// are enough for xapian and img-dnn". "Enough" means stably below
	// saturation so the queueing tail can meet the QoS target, while one
	// step fewer resources is not.
	type tc struct {
		p     Profile
		alloc hw.Alloc
	}
	mc, xa, id := Memcached(), Xapian(), ImgDNN()
	cases := []tc{
		{mc, hw.Alloc{Cores: 4, Freq: 1.6, LLCWays: 6}},
		{xa, hw.Alloc{Cores: 4, Freq: 1.8, LLCWays: 5}},
		{id, hw.Alloc{Cores: 4, Freq: 1.8, LLCWays: 5}},
	}
	for _, c := range cases {
		st := c.p.LSRate(c.alloc, 0.2*c.p.PeakQPS, 1)
		if st.Rho >= 1 {
			t.Errorf("%s at 20%% on %v: rho = %v, want stable", c.p.Name, c.alloc, st.Rho)
		}
		// Two fewer cores must not be enough — "just-enough" is tight.
		tight := c.alloc
		tight.Cores -= 2
		st2 := c.p.LSRate(tight, 0.2*c.p.PeakQPS, 1)
		if st2.Rho < 1 {
			t.Errorf("%s at 20%% on %v: rho = %v, allocation not tight", c.p.Name, tight, st2.Rho)
		}
	}
}

func TestBandwidthAccounting(t *testing.T) {
	fe := Ferret()
	st := fe.BERate(hw.Alloc{Cores: 16, Freq: 2.2, LLCWays: 4}, 1)
	if st.BandwidthGBs <= 0 {
		t.Fatal("no bandwidth from a memory-heavy app")
	}
	// Bandwidth must equal IPS × MPKI/1000 × 64 B.
	want := st.IPS * st.MPKI / 1000 * 64 / 1e9
	if math.Abs(st.BandwidthGBs-want)/want > 1e-9 {
		t.Errorf("bandwidth %v inconsistent with IPS/MPKI (%v)", st.BandwidthGBs, want)
	}
	// More ways → fewer misses → less traffic.
	cached := fe.BERate(hw.Alloc{Cores: 16, Freq: 2.2, LLCWays: 18}, 1)
	if cached.BandwidthGBs >= st.BandwidthGBs {
		t.Error("more ways did not cut bandwidth")
	}
}
