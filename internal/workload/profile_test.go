package workload

import (
	"testing"
	"testing/quick"
)

func TestAllProfilesValid(t *testing.T) {
	for _, p := range append(LSServices(), BEApps()...) {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", p.Name, err)
		}
	}
}

func TestRegistries(t *testing.T) {
	if got := len(LSServices()); got != 3 {
		t.Errorf("LSServices count = %d, want 3", got)
	}
	if got := len(BEApps()); got != 6 {
		t.Errorf("BEApps count = %d, want 6", got)
	}
	for _, name := range []string{"memcached", "xapian", "img-dnn", "bs", "fa", "fe", "rt", "sp", "fd"} {
		p, ok := ByName(name)
		if !ok || p.Name != name {
			t.Errorf("ByName(%q) = %v, %v", name, p.Name, ok)
		}
	}
	if _, ok := ByName("nosuch"); ok {
		t.Error("ByName accepted an unknown name")
	}
}

func TestPaperQoSTargetsAndPeaks(t *testing.T) {
	// §III-A: 10 ms for memcached and img-dnn, 15 ms for xapian.
	// §VII-A: peak loads 60 K, 3.5 K, 3 K QPS.
	cases := []struct {
		name   string
		target float64
		peak   float64
	}{
		{"memcached", 0.010, 60000},
		{"xapian", 0.015, 3500},
		{"img-dnn", 0.010, 3000},
	}
	for _, c := range cases {
		p, _ := ByName(c.name)
		if p.QoSTarget() != c.target {
			t.Errorf("%s QoS target = %v, want %v", c.name, p.QoSTarget(), c.target)
		}
		if p.PeakQPS != c.peak {
			t.Errorf("%s peak = %v, want %v", c.name, p.PeakQPS, c.peak)
		}
	}
}

func TestQoSTargetPanicsForBE(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("QoSTarget on a BE profile did not panic")
		}
	}()
	Blackscholes().QoSTarget()
}

func TestValidateCatchesBrokenProfiles(t *testing.T) {
	mut := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.Activity = 0 },
		func(p *Profile) { p.Activity = 1.5 },
		func(p *Profile) { p.CPI.CPIBase = 0 },
		func(p *Profile) { p.MRC.HalfWays = 0 },
	}
	for i, m := range mut {
		p := Memcached()
		m(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	ls := Memcached()
	ls.PeakQPS = 0
	if ls.Validate() == nil {
		t.Error("LS profile without peak accepted")
	}
	be := Ferret()
	be.SerialFrac = 1
	if be.Validate() == nil {
		t.Error("BE profile with serial fraction 1 accepted")
	}
	be2 := Ferret()
	be2.InputLevel = 7
	if be2.Validate() == nil {
		t.Error("BE profile with input level 7 accepted")
	}
}

func TestSpeedupProperties(t *testing.T) {
	for _, p := range BEApps() {
		if got := p.Speedup(1); got != 1 {
			t.Errorf("%s Speedup(1) = %v, want 1", p.Name, got)
		}
		if got := p.Speedup(0); got != 0 {
			t.Errorf("%s Speedup(0) = %v, want 0", p.Name, got)
		}
		prev := 0.0
		for n := 1; n <= 20; n++ {
			s := p.Speedup(n)
			if s > float64(n) {
				t.Errorf("%s superlinear speedup at %d cores: %v", p.Name, n, s)
			}
			if s < prev {
				// Mild decline at very high core counts is physical
				// (synchronization collapse) but none of our six profiles
				// should decline within 20 cores.
				t.Errorf("%s speedup declined at %d cores: %v < %v", p.Name, n, s, prev)
			}
			prev = s
		}
	}
}

func TestScalingSpectrum(t *testing.T) {
	// Ferret is the best-scaling profile (pipeline); fluidanimate the
	// worst (sync-heavy). This ordering is what flips the core-vs-
	// frequency preference in Fig. 3.
	fe, _ := ByName("fe")
	fd, _ := ByName("fd")
	if fe.Speedup(16) <= fd.Speedup(16) {
		t.Errorf("ferret speedup %v not above fluidanimate %v", fe.Speedup(16), fd.Speedup(16))
	}
	if fe.Speedup(16) < 13 {
		t.Errorf("ferret 16-core speedup %v, want near-linear (≥13)", fe.Speedup(16))
	}
	if fd.Speedup(16) > 12 {
		t.Errorf("fluidanimate 16-core speedup %v, want visibly sublinear (≤12)", fd.Speedup(16))
	}
}

func TestWithInputScalesWorkAndFootprint(t *testing.T) {
	base := Raytrace()
	small := base.WithInput(1)
	big := base.WithInput(6)
	if !(small.InstrPerUnit < base.InstrPerUnit && base.InstrPerUnit < big.InstrPerUnit) {
		t.Error("input level does not order instruction counts")
	}
	if !(small.MRC.MPKI1 < base.MRC.MPKI1 && base.MRC.MPKI1 < big.MRC.MPKI1) {
		t.Error("input level does not order working sets")
	}
	for _, lvl := range []int{0, 1, 3, 6, 9} {
		q := base.WithInput(lvl)
		if err := q.Validate(); err != nil {
			t.Errorf("WithInput(%d) produced invalid profile: %v", lvl, err)
		}
	}
	// LS profiles are unaffected.
	ls := Memcached()
	if got := ls.WithInput(5); got.InstrPerQuery != ls.InstrPerQuery {
		t.Error("WithInput modified an LS profile")
	}
}

func TestWithInputLevel3IsIdentity(t *testing.T) {
	for _, p := range BEApps() {
		q := p.WithInput(3)
		if q.InstrPerUnit != p.InstrPerUnit || q.MRC != p.MRC {
			t.Errorf("%s WithInput(3) changed the profile", p.Name)
		}
	}
}

func TestSpeedupQuickProperty(t *testing.T) {
	p := Facesim()
	f := func(n uint8) bool {
		c := int(n%32) + 1
		s := p.Speedup(c)
		return s >= 0.05 && s <= float64(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
