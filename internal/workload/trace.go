package workload

import "math"

// Trace maps simulation time (seconds) to an LS load expressed as a
// fraction of the service's peak QPS. Traces model the cluster-level
// dispatcher of Fig. 4: the node simulator multiplies the fraction by the
// service's PeakQPS.
type Trace func(t float64) float64

// Constant returns a flat trace at the given fraction.
func Constant(frac float64) Trace {
	return func(float64) float64 { return frac }
}

// Triangle returns the paper's fluctuating evaluation input (§VII-A): the
// load climbs linearly from lo to hi over the first half of duration and
// descends back to lo over the second half. Outside [0, duration] the
// trace holds the boundary value.
func Triangle(lo, hi, duration float64) Trace {
	return func(t float64) float64 {
		switch {
		case t <= 0:
			return lo
		case t >= duration:
			return lo
		case t < duration/2:
			return lo + (hi-lo)*t/(duration/2)
		default:
			return hi - (hi-lo)*(t-duration/2)/(duration/2)
		}
	}
}

// Ramp returns a one-way linear ramp from lo to hi over duration, holding
// hi afterwards — the Fig. 11 input (20 % → 50 %).
func Ramp(lo, hi, duration float64) Trace {
	return func(t float64) float64 {
		switch {
		case t <= 0:
			return lo
		case t >= duration:
			return hi
		default:
			return lo + (hi-lo)*t/duration
		}
	}
}

// Diurnal returns a day-night sinusoid between lo and hi with the given
// period, starting at the trough (datacenter night).
func Diurnal(lo, hi, period float64) Trace {
	return func(t float64) float64 {
		phase := 2 * math.Pi * t / period
		return lo + (hi-lo)*(1-math.Cos(phase))/2
	}
}

// Steps returns a staircase trace: each level is held for stepDur seconds,
// cycling back to the first level at the end.
func Steps(levels []float64, stepDur float64) Trace {
	return func(t float64) float64 {
		if len(levels) == 0 {
			return 0
		}
		if t < 0 {
			t = 0
		}
		i := int(t/stepDur) % len(levels)
		return levels[i]
	}
}

// Stair is a piecewise-constant diurnal load: each level holds for
// StepDurS whole seconds, cycling. Unlike the Trace closures above it
// also *declares* where its value can change (BreakSteps), which is
// what lets the event-driven cluster engine skip the flat stretches —
// a closure trace is opaque, so the engine must assume it moves every
// second.
type Stair struct {
	// Levels are the load fractions, one per tread.
	Levels []float64
	// StepDurS is the tread width in whole seconds (min 1).
	StepDurS int
}

// Trace returns the staircase as an ordinary Trace.
func (s Stair) Trace() Trace {
	dur := s.StepDurS
	if dur < 1 {
		dur = 1
	}
	return Steps(s.Levels, float64(dur))
}

// BreakSteps returns every step index in [0, durationS) where the trace
// value may change, in the cluster engine's sampling convention: step
// index s covers the interval ending at t = s+1, so a tread beginning
// at second k·StepDurS first shows up at step k·StepDurS − 1. The list
// is step 0 plus each such edge — what a run's Cluster.TraceBreaks
// wants.
func (s Stair) BreakSteps(durationS int) []int {
	dur := s.StepDurS
	if dur < 1 {
		dur = 1
	}
	breaks := []int{0}
	for t := dur - 1; t < durationS; t += dur {
		if t == 0 {
			continue // 1-second treads: the first edge is step 0 itself
		}
		breaks = append(breaks, t)
	}
	return breaks
}

// Clamped wraps a trace so its output always lies in [0, 1].
func Clamped(tr Trace) Trace {
	return func(t float64) float64 {
		v := tr(t)
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
}
