package workload

import (
	"strings"
	"testing"
)

// FuzzReplayCSV exercises the CSV trace parser with arbitrary input: it
// must never panic, and any successfully parsed trace must be total and
// finite over a probe range.
func FuzzReplayCSV(f *testing.F) {
	f.Add("t,frac\n0,0.2\n60,0.8\n")
	f.Add("0,0.1\n10,0.9\n20,0.5\n")
	f.Add("")
	f.Add("garbage")
	f.Add("0,0.1\n0,0.2\n")
	f.Fuzz(func(t *testing.T, src string) {
		tr, err := ReplayCSV(strings.NewReader(src))
		if err != nil {
			return
		}
		for _, x := range []float64{-1, 0, 5, 1e6} {
			v := tr(x)
			if v != v { // NaN
				t.Fatalf("trace produced NaN at %v for input %q", x, src)
			}
		}
	})
}
