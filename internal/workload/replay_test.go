package workload

import (
	"math"
	"strings"
	"testing"
)

func TestReplayInterpolates(t *testing.T) {
	tr, err := Replay([]float64{0, 10, 20}, []float64{0.2, 0.6, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[float64]float64{
		-5: 0.2, 0: 0.2, 5: 0.4, 10: 0.6, 15: 0.5, 20: 0.4, 100: 0.4,
	}
	for x, want := range cases {
		if got := tr(x); math.Abs(got-want) > 1e-12 {
			t.Errorf("tr(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestReplayValidation(t *testing.T) {
	if _, err := Replay(nil, nil); err == nil {
		t.Error("empty replay accepted")
	}
	if _, err := Replay([]float64{0, 1}, []float64{0.1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Replay([]float64{0, 5, 5}, []float64{1, 2, 3}); err == nil {
		t.Error("non-increasing times accepted")
	}
}

func TestReplayCSV(t *testing.T) {
	src := "t,frac\n0,0.2\n60,0.8\n120,0.3\n"
	tr, err := ReplayCSV(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := tr(30); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("tr(30) = %v, want 0.5", got)
	}
	if got := tr(120); got != 0.3 {
		t.Errorf("tr(120) = %v, want 0.3", got)
	}
}

func TestReplayCSVNoHeader(t *testing.T) {
	tr, err := ReplayCSV(strings.NewReader("0,0.1\n10,0.9\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got := tr(5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("tr(5) = %v", got)
	}
}

func TestReplayCSVErrors(t *testing.T) {
	if _, err := ReplayCSV(strings.NewReader("a,b\nc,d\n")); err == nil {
		t.Error("all-garbage CSV accepted")
	}
	if _, err := ReplayCSV(strings.NewReader("0,0.1\nbad,row\n")); err == nil {
		t.Error("mid-stream garbage accepted")
	}
	if _, err := ReplayCSV(strings.NewReader("0,0.1,extra\n")); err == nil {
		t.Error("three-column CSV accepted")
	}
}
