package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Replay builds a trace from recorded (time, load-fraction) points with
// linear interpolation between them — the hook for driving the simulator
// from a production load trace instead of a synthetic shape. Outside the
// recorded range the boundary values hold.
func Replay(times, fracs []float64) (Trace, error) {
	if len(times) == 0 || len(times) != len(fracs) {
		return nil, fmt.Errorf("workload: replay needs matching non-empty time/fraction series")
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			return nil, fmt.Errorf("workload: replay times not strictly increasing at index %d", i)
		}
	}
	ts := append([]float64(nil), times...)
	fs := append([]float64(nil), fracs...)
	return func(t float64) float64 {
		if t <= ts[0] {
			return fs[0]
		}
		if t >= ts[len(ts)-1] {
			return fs[len(fs)-1]
		}
		i := sort.SearchFloat64s(ts, t)
		// ts[i-1] < t ≤ ts[i]
		span := ts[i] - ts[i-1]
		frac := (t - ts[i-1]) / span
		return fs[i-1] + (fs[i]-fs[i-1])*frac
	}, nil
}

// ReplayCSV reads a two-column CSV (seconds, load fraction of peak; a
// header row is skipped if non-numeric) and returns the interpolating
// trace.
func ReplayCSV(r io.Reader) (Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	var times, fracs []float64
	first := true
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: replay csv: %w", err)
		}
		t, err1 := strconv.ParseFloat(rec[0], 64)
		f, err2 := strconv.ParseFloat(rec[1], 64)
		if err1 != nil || err2 != nil {
			if first {
				first = false
				continue // header row
			}
			return nil, fmt.Errorf("workload: replay csv: bad row %v", rec)
		}
		first = false
		times = append(times, t)
		fracs = append(fracs, f)
	}
	return Replay(times, fracs)
}
