package workload_test

import (
	"fmt"
	"strings"

	"sturgeon/internal/workload"
)

// Load traces map time to a fraction of the service's peak QPS.
func ExampleTriangle() {
	tr := workload.Triangle(0.2, 0.8, 600) // the paper's §VII-A input
	fmt.Printf("%.2f %.2f %.2f\n", tr(0), tr(300), tr(600))
	// Output:
	// 0.20 0.80 0.20
}

// Production traces replay from CSV with linear interpolation.
func ExampleReplayCSV() {
	csv := "t,frac\n0,0.2\n60,0.8\n120,0.4\n"
	tr, _ := workload.ReplayCSV(strings.NewReader(csv))
	fmt.Printf("%.2f %.2f\n", tr(30), tr(90))
	// Output:
	// 0.50 0.60
}

// Profiles span the preference spectrum the paper exploits: ferret's
// pipeline scales almost linearly while fluidanimate's barriers bite.
func ExampleProfile_Speedup() {
	fe, _ := workload.ByName("fe")
	fd, _ := workload.ByName("fd")
	fmt.Printf("ferret x%.1f, fluidanimate x%.1f on 16 cores\n",
		fe.Speedup(16), fd.Speedup(16))
	// Output:
	// ferret x13.9, fluidanimate x9.9 on 16 cores
}
