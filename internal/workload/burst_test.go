package workload

import (
	"reflect"
	"testing"
)

func testBurstSpec(seed int64) BurstSpec {
	return BurstSpec{
		BaseLo:     0.25,
		BaseHi:     0.5,
		PeriodS:    600,
		BaseTreadS: 60,
		Bursts:     4,
		AmpMin:     0.2,
		AmpMax:     0.95,
		Alpha:      1.3,
		RampS:      5,
		HoldS:      20,
		DecayS:     30,
		Seed:       seed,
	}
}

func TestFlashCrowdDeterministic(t *testing.T) {
	a := testBurstSpec(1).Build(900)
	b := testBurstSpec(1).Build(900)
	if !reflect.DeepEqual(a.Levels, b.Levels) {
		t.Fatalf("same spec compiled to different traces")
	}
	c := testBurstSpec(2).Build(900)
	if reflect.DeepEqual(a.Levels, c.Levels) {
		t.Fatalf("different seeds compiled to identical traces")
	}
}

func TestFlashCrowdBoundsAndSurges(t *testing.T) {
	spec := testBurstSpec(7)
	f := spec.Build(900)
	if len(f.Levels) != 900 {
		t.Fatalf("want 900 levels, got %d", len(f.Levels))
	}
	max, baseMax := 0.0, 0.0
	for _, v := range f.Levels {
		if v < 0 || v > spec.AmpMax {
			t.Fatalf("level %v outside [0, %v]", v, spec.AmpMax)
		}
		if v > max {
			max = v
		}
	}
	// The undisturbed base never exceeds BaseHi; a flash crowd must
	// push the trace clearly above it.
	baseMax = spec.BaseHi
	if max <= baseMax+spec.AmpMin/2 {
		t.Fatalf("no surge visible: max %v vs base %v", max, baseMax)
	}
}

func TestFlashCrowdBreaksContract(t *testing.T) {
	f := testBurstSpec(3).Build(600)
	breaks := f.BreakSteps(600)
	if len(breaks) == 0 || breaks[0] != 0 {
		t.Fatalf("breaks must start at step 0: %v", breaks)
	}
	set := make(map[int]bool, len(breaks))
	for i, b := range breaks {
		if b < 0 || b >= 600 {
			t.Fatalf("break %d outside horizon: %d", i, b)
		}
		if i > 0 && b <= breaks[i-1] {
			t.Fatalf("breaks not strictly increasing: %v", breaks)
		}
		set[b] = true
	}
	// Completeness + minimality: the level changes at a step iff the
	// step is declared (step 0 aside).
	for s := 1; s < 600; s++ {
		changed := f.Levels[s] != f.Levels[s-1]
		if changed && !set[s] {
			t.Fatalf("undeclared change at step %d", s)
		}
		if !changed && set[s] {
			t.Fatalf("declared break at flat step %d", s)
		}
	}
	// The trace samples in the engine convention: step s reads t=s+1.
	tr := f.Trace()
	for _, s := range []int{0, 1, 59, 60, 599} {
		if got := tr(float64(s + 1)); got != f.Levels[s] {
			t.Fatalf("tr(%d) = %v, want Levels[%d] = %v", s+1, got, s, f.Levels[s])
		}
	}
}

func TestFlashCrowdHeavyTail(t *testing.T) {
	// Across many seeds the Pareto amplitudes must actually exercise
	// the tail: some crowds near AmpMin, some clamped at AmpMax.
	spec := testBurstSpec(0)
	spec.Bursts = 2
	sawSmall, sawClamp := false, false
	for seed := int64(0); seed < 40; seed++ {
		spec.Seed = seed
		f := spec.Build(900)
		max := 0.0
		for _, v := range f.Levels {
			if v > max {
				max = v
			}
		}
		if max >= spec.AmpMax-1e-9 {
			sawClamp = true
		} else if max < spec.BaseHi+2*spec.AmpMin {
			sawSmall = true
		}
	}
	if !sawClamp || !sawSmall {
		t.Fatalf("amplitude distribution not heavy-tailed: clamp=%v small=%v", sawClamp, sawSmall)
	}
}
