// Package workload defines behavioural models of the applications the
// paper co-locates: three latency-sensitive (LS) services — memcached,
// xapian and img-dnn — and six best-effort (BE) PARSEC applications —
// blackscholes, facesim, ferret, raytrace, swaptions and fluidanimate.
//
// Each application is a Profile: an instruction-level description (base
// CPI, miss-ratio curve, instructions per query/work-unit), a scalability
// law (Amdahl serial fraction plus synchronization loss), a power activity
// factor, and — for LS services — a QoS target and peak load. Together
// these span the resource-preference spectrum the paper exploits:
// compute-bound scalable applications profit from frequency, memory-bound
// pipelines profit from cores, cache-hungry applications profit from LLC
// ways.
//
// The profiles are synthetic stand-ins calibrated to the published
// characteristics of the real applications (see DESIGN.md §2); their role
// is to preserve the *shape* of the trade-offs, not testbed-exact numbers.
package workload

import (
	"fmt"
	"math"

	"sturgeon/internal/cache"
)

// Class distinguishes latency-sensitive services from best-effort
// applications.
type Class int

const (
	// LS marks a latency-sensitive service with a tail-latency QoS target.
	LS Class = iota
	// BE marks a best-effort application measured by throughput only.
	BE
)

// String returns "LS" or "BE".
func (c Class) String() string {
	if c == LS {
		return "LS"
	}
	return "BE"
}

// Profile is the behavioural model of one application.
type Profile struct {
	// Name is the short identifier used in the paper's figures (bs, fa,
	// fe, rt, sp, fd, memcached, xapian, img-dnn).
	Name string
	// FullName is the human-readable application name.
	FullName string
	Class    Class

	// CPI is the core-bound CPI model; MRC the LLC miss-ratio curve.
	CPI cache.CPIModel
	MRC cache.MRC

	// Activity is the power activity factor in [0,1] (see power.CoreLoad).
	Activity float64

	// LS-only fields.

	// QoSTargetS is the tail-latency target in seconds (95 %-ile).
	QoSTargetS float64
	// PeakQPS is the service's peak load in queries per second.
	PeakQPS float64
	// InstrPerQuery is the average instruction count of one query.
	InstrPerQuery float64
	// SvcCV is the coefficient of variation of per-query service time.
	SvcCV float64
	// ArrivalCV is the burstiness of the arrival process (1 = Poisson).
	// Fan-out RPC patterns and TCP batching make real service traffic
	// markedly bursty; memcached's tiny queries arrive in the burstiest
	// clumps, which is why its tail rises well before core saturation.
	ArrivalCV float64

	// BE-only fields.

	// InstrPerUnit is the instruction count of one unit of best-effort
	// work (throughput is reported in units/s).
	InstrPerUnit float64
	// SerialFrac is the Amdahl serial fraction.
	SerialFrac float64
	// SyncLoss is the additional per-extra-core efficiency loss from
	// synchronization and communication.
	SyncLoss float64
	// InputLevel is the PARSEC-style input-set level in 1..6 (the paper
	// uses these as the BE "input size" model feature). Level 3
	// corresponds to the native-run calibration above.
	InputLevel int
}

// Validate checks internal consistency of the profile.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: profile without a name")
	}
	if err := p.MRC.Validate(); err != nil {
		return fmt.Errorf("workload %s: %w", p.Name, err)
	}
	if p.CPI.CPIBase <= 0 || p.CPI.MissPenaltyNs < 0 {
		return fmt.Errorf("workload %s: invalid CPI model %+v", p.Name, p.CPI)
	}
	if p.Activity <= 0 || p.Activity > 1 {
		return fmt.Errorf("workload %s: activity %v outside (0,1]", p.Name, p.Activity)
	}
	switch p.Class {
	case LS:
		if p.QoSTargetS <= 0 || p.PeakQPS <= 0 || p.InstrPerQuery <= 0 || p.SvcCV <= 0 {
			return fmt.Errorf("workload %s: incomplete LS parameters", p.Name)
		}
		if p.ArrivalCV <= 0 {
			return fmt.Errorf("workload %s: arrival CV must be positive", p.Name)
		}
	case BE:
		if p.InstrPerUnit <= 0 {
			return fmt.Errorf("workload %s: incomplete BE parameters", p.Name)
		}
		if p.SerialFrac < 0 || p.SerialFrac >= 1 || p.SyncLoss < 0 {
			return fmt.Errorf("workload %s: invalid scaling parameters", p.Name)
		}
		if p.InputLevel < 1 || p.InputLevel > 6 {
			return fmt.Errorf("workload %s: input level %d outside 1..6", p.Name, p.InputLevel)
		}
	default:
		return fmt.Errorf("workload %s: unknown class %d", p.Name, p.Class)
	}
	return nil
}

const missPenaltyNs = 75

// Hyper-threading geometry of the experimental platform (Table II: 10
// physical cores per socket, 2 threads per core, HT enabled — §VII-A runs
// on 20 logical cores). Once an allocation exceeds the physical core
// count, each additional logical core shares a physical core with a
// sibling and contributes only a fraction of a core's capacity. The kink
// this puts at 10 cores is a real discontinuity of the platform's
// performance surface.
const (
	physicalCores       = 10
	htSiblingEfficiency = 0.8
)

// EffectiveParallelism converts n logical cores into physical-core
// equivalents under the platform's hyper-threading geometry.
func EffectiveParallelism(n int) float64 {
	if n <= 0 {
		return 0
	}
	if n <= physicalCores {
		return float64(n)
	}
	return physicalCores + htSiblingEfficiency*float64(n-physicalCores)
}

// Memcached returns the model of the in-memory key-value cache: tiny
// highly-variable queries at very high rate, modest cache appetite, low
// power activity (network- and stall-dominated).
func Memcached() Profile {
	return Profile{
		Name: "memcached", FullName: "Memcached (CloudSuite, Twitter dataset)",
		Class:         LS,
		CPI:           cache.CPIModel{CPIBase: 0.55, MissPenaltyNs: missPenaltyNs},
		MRC:           cache.MRC{MPKI1: 8, MPKIInf: 2, HalfWays: 3},
		Activity:      0.55,
		QoSTargetS:    0.010,
		PeakQPS:       60000,
		InstrPerQuery: 0.42e6,
		SvcCV:         0.7,
		ArrivalCV:     2.8,
	}
}

// Xapian returns the model of the web-search leaf node: branchy index
// walks with a mid-sized footprint and moderately variable query cost.
func Xapian() Profile {
	return Profile{
		Name: "xapian", FullName: "Xapian web search (Tailbench, Wikipedia index)",
		Class:         LS,
		CPI:           cache.CPIModel{CPIBase: 0.90, MissPenaltyNs: missPenaltyNs},
		MRC:           cache.MRC{MPKI1: 10, MPKIInf: 1.5, HalfWays: 4},
		Activity:      0.60,
		QoSTargetS:    0.015,
		PeakQPS:       3500,
		InstrPerQuery: 4.9e6,
		SvcCV:         0.6,
		ArrivalCV:     1.5,
	}
}

// ImgDNN returns the model of the handwriting-recognition service: dense
// uniform compute per query with a compact working set.
func ImgDNN() Profile {
	return Profile{
		Name: "img-dnn", FullName: "Img-dnn handwriting recognition (Tailbench, MNIST)",
		Class:         LS,
		CPI:           cache.CPIModel{CPIBase: 0.50, MissPenaltyNs: missPenaltyNs},
		MRC:           cache.MRC{MPKI1: 6, MPKIInf: 1, HalfWays: 2.5},
		Activity:      0.65,
		QoSTargetS:    0.010,
		PeakQPS:       3000,
		InstrPerQuery: 8e6,
		SvcCV:         0.3,
		ArrivalCV:     1.2,
	}
}

// Blackscholes: embarrassingly parallel option pricing; compute-bound with
// a tiny working set, so it profits fully from frequency and from cores.
func Blackscholes() Profile {
	return beProfile("bs", "PARSEC blackscholes", 0.80, cache.MRC{MPKI1: 3, MPKIInf: 0.3, HalfWays: 2},
		0.46, 42e6, 0.010, 0.0008)
}

// Profile calibration note: the Amdahl serial fractions and miss-ratio
// curves below are jointly tuned so the six applications populate the
// paper's preference spectrum under the Fig. 3 configuration pairs —
// every application prefers 16 cores @1.8 GHz over 12 @2.2 GHz (the
// 20 %-load pair), while at the 35 %-load pair (8 cores @2.2 GHz vs
// 12 @1.4 GHz) only the memory-bound pipeline ferret keeps preferring
// cores. See workload tests TestCoreVsFrequencyPreference and
// TestMoreCoresWinAtLowLoadPair for the pinned inequalities.

// Facesim: physics simulation with moderate memory traffic and visible
// synchronization between frames.
func Facesim() Profile {
	return beProfile("fa", "PARSEC facesim", 0.70, cache.MRC{MPKI1: 12, MPKIInf: 1.2, HalfWays: 1.5},
		0.40, 110e6, 0.040, 0)
}

// Ferret: content-similarity pipeline; near-perfect pipeline scaling but
// memory-bound stages, so extra cores beat extra frequency.
func Ferret() Profile {
	return beProfile("fe", "PARSEC ferret", 0.55, cache.MRC{MPKI1: 15, MPKIInf: 6, HalfWays: 4},
		0.34, 95e6, 0.004, 0.0006)
	// fe keeps a high compulsory-miss floor: its per-core rate saturates
	// with frequency, so it is the one application that prefers cores at
	// every load — the paper's Fig. 3 outlier.
}

// Raytrace: good scaling and a large reuse-friendly working set — the most
// LLC-way-sensitive of the six.
func Raytrace() Profile {
	return beProfile("rt", "PARSEC raytrace", 0.65, cache.MRC{MPKI1: 18, MPKIInf: 0.8, HalfWays: 2.2},
		0.38, 80e6, 0.030, 0)
}

// Swaptions: Monte-Carlo pricing; compute-dense, highest activity factor,
// excellent scaling.
func Swaptions() Profile {
	return beProfile("sp", "PARSEC swaptions", 0.85, cache.MRC{MPKI1: 2, MPKIInf: 0.2, HalfWays: 2},
		0.50, 60e6, 0.006, 0.0005)
}

// Fluidanimate: particle simulation whose frame barriers impose the
// heaviest synchronization loss of the six.
func Fluidanimate() Profile {
	return beProfile("fd", "PARSEC fluidanimate", 0.60, cache.MRC{MPKI1: 10, MPKIInf: 1.0, HalfWays: 1.5},
		0.44, 130e6, 0.035, 0.0005)
}

func beProfile(name, full string, cpiBase float64, mrc cache.MRC, activity, instrPerUnit, serial, sync float64) Profile {
	return Profile{
		Name: name, FullName: full,
		Class:        BE,
		CPI:          cache.CPIModel{CPIBase: cpiBase, MissPenaltyNs: missPenaltyNs},
		MRC:          mrc,
		Activity:     activity,
		InstrPerUnit: instrPerUnit,
		SerialFrac:   serial,
		SyncLoss:     sync,
		InputLevel:   3,
	}
}

// LSServices returns the three latency-sensitive services in paper order.
func LSServices() []Profile {
	return []Profile{Memcached(), Xapian(), ImgDNN()}
}

// BEApps returns the six best-effort applications in paper order.
func BEApps() []Profile {
	return []Profile{Blackscholes(), Facesim(), Ferret(), Raytrace(), Swaptions(), Fluidanimate()}
}

// ByName looks an application up by its short name.
func ByName(name string) (Profile, bool) {
	for _, p := range append(LSServices(), BEApps()...) {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// WithInput returns a copy of a BE profile adjusted to a PARSEC-style
// input level in 1..6. Larger inputs enlarge the working set (scaling the
// miss-ratio curve) and the per-unit instruction count.
func (p Profile) WithInput(level int) Profile {
	if p.Class != BE {
		return p
	}
	if level < 1 {
		level = 1
	}
	if level > 6 {
		level = 6
	}
	// Geometric growth per level relative to the calibrated level 3.
	scale := math.Pow(1.8, float64(level-3))
	q := p
	q.InputLevel = level
	q.InstrPerUnit = p.InstrPerUnit * scale
	ws := math.Pow(1.3, float64(level-3))
	q.MRC.MPKI1 = p.MRC.MPKI1 * ws
	q.MRC.MPKIInf = p.MRC.MPKIInf * ws
	q.MRC.HalfWays = p.MRC.HalfWays * math.Pow(1.15, float64(level-3))
	return q
}

// Speedup returns the parallel speedup of the profile on n logical cores:
// Amdahl's law over the hyper-threading-effective parallelism, degraded
// by a per-extra-thread synchronization loss. It is 1 at n=1 and concave
// in n.
func (p Profile) Speedup(n int) float64 {
	if n <= 0 {
		return 0
	}
	e := EffectiveParallelism(n)
	amdahl := e / (1 + p.SerialFrac*(e-1))
	loss := 1 - p.SyncLoss*float64(n-1)
	if loss < 0.05 {
		loss = 0.05
	}
	return amdahl * loss
}

// QoSTarget returns the QoS target for LS profiles; it panics for BE
// profiles, which have none.
func (p Profile) QoSTarget() float64 {
	if p.Class != LS {
		panic(fmt.Sprintf("workload: %s is not an LS service", p.Name))
	}
	return p.QoSTargetS
}
