package sim

import "sturgeon/internal/hw"

// RAPLCap models firmware-level power capping (Intel RAPL's package
// power limit): whenever the measured draw exceeds the limit, the
// package throttles *every* core's frequency one step; with sustained
// headroom it releases one step, up to each allocation's configured
// frequency. This is the indiscriminate mechanism the paper's
// introduction contrasts with software co-location management — it keeps
// the node safe but cannot tell the latency-critical cores from the
// best-effort ones.
type RAPLCap struct {
	Spec  hw.Spec
	Limit float64 // watts
	// ReleaseHeadroomW is how far below the limit the draw must sit
	// before a throttle step is released (default 3 W).
	ReleaseHeadroomW float64

	// throttle is the number of DVFS steps currently forced off every
	// allocation.
	throttle int
}

// Apply clamps a desired configuration by the current throttle state and
// returns what the firmware actually grants.
func (r *RAPLCap) Apply(cfg hw.Config) hw.Config {
	if r.throttle <= 0 {
		return cfg
	}
	down := func(f hw.GHz) hw.GHz {
		lvl := r.Spec.LevelOfFreq(f) - r.throttle
		if lvl < 0 {
			lvl = 0
		}
		return r.Spec.FreqAtLevel(lvl)
	}
	cfg.LS.Freq = down(cfg.LS.Freq)
	cfg.BE.Freq = down(cfg.BE.Freq)
	return cfg
}

// Observe feeds one interval's measured power and updates the throttle.
func (r *RAPLCap) Observe(watts float64) {
	headroom := r.ReleaseHeadroomW
	if headroom <= 0 {
		headroom = 3
	}
	switch {
	case watts > r.Limit:
		// Firmware reacts hard: enough steps to clear the excess at
		// roughly 2 W per step across the package.
		steps := 1 + int((watts-r.Limit)/2)
		r.throttle += steps
		if max := r.Spec.NumFreqLevels() - 1; r.throttle > max {
			r.throttle = max
		}
	case watts < r.Limit-headroom && r.throttle > 0:
		r.throttle--
	}
}

// Throttle returns the current forced step count.
func (r *RAPLCap) Throttle() int { return r.throttle }
