package sim

import (
	"math/rand"
	"testing"

	"sturgeon/internal/hw"
	"sturgeon/internal/power"
	"sturgeon/internal/workload"
)

func TestDeterministicClassification(t *testing.T) {
	if !QuietNode(workload.Memcached(), workload.Raytrace(), 1).Deterministic() {
		t.Error("QuietNode must be deterministic")
	}
	if NewNode(workload.Memcached(), workload.Raytrace(), 1).Deterministic() {
		t.Error("NewNode carries meter/latency noise and interference; must not be deterministic")
	}
	if ProfilingNode(workload.Memcached(), workload.Raytrace(), 1).Deterministic() {
		t.Error("ProfilingNode keeps measurement noise; must not be deterministic")
	}
	des := QuietNode(workload.Memcached(), workload.Raytrace(), 1)
	des.UseDES = true
	if des.Deterministic() {
		t.Error("the per-interval DES latency engine samples from the node rng; must not be deterministic")
	}

	rng := rand.New(rand.NewSource(7))
	if !None().Quiet() || (&Interference{rng: rng}).Quiet() == false {
		t.Error("disabled interference sources must be quiet")
	}
	if DefaultInterference(rng).Quiet() {
		t.Error("an armed interference source must not be quiet")
	}
	var nilInterf *Interference
	if !nilInterf.Quiet() {
		t.Error("nil interference must be quiet")
	}

	if !power.NewMeter(0, nil).Noiseless() {
		t.Error("meter without a normal source must be noiseless")
	}
	if power.NewMeter(0.8, rng.NormFloat64).Noiseless() {
		t.Error("meter with noise must not be noiseless")
	}
	var nilMeter *power.Meter
	if !nilMeter.Noiseless() {
		t.Error("nil meter must be noiseless")
	}
}

// TestDeterministicStepIsFixedPoint pins the property the event engine's
// skip logic rests on: for a deterministic node with zero backlog, Step
// at a constant load is a pure function — every interval reproduces the
// previous one bit-for-bit (modulo the Time stamp).
func TestDeterministicStepIsFixedPoint(t *testing.T) {
	n := QuietNode(workload.Memcached(), workload.Raytrace(), 1)
	cfg := hw.Config{
		LS: hw.Alloc{Cores: 6, Freq: 1.8, LLCWays: 8},
		BE: hw.Alloc{Cores: 14, Freq: 1.8, LLCWays: 12},
	}
	if err := n.Apply(cfg); err != nil {
		t.Fatal(err)
	}
	if !n.Deterministic() {
		t.Fatal("setup must be deterministic")
	}
	qps := 0.3 * n.LSProfile.PeakQPS
	first := n.Step(0, qps)
	if n.Backlog() != 0 {
		t.Fatal("healthy config must not accumulate backlog")
	}
	for s := 1; s <= 5; s++ {
		got := n.Step(float64(s), qps)
		want := first
		want.Time = float64(s)
		if got != want {
			t.Fatalf("step %d diverged from fixed point:\n got %+v\nwant %+v", s, got, want)
		}
	}
}
