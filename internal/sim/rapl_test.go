package sim

import (
	"testing"

	"sturgeon/internal/hw"
)

func TestRAPLCapThrottleAndRelease(t *testing.T) {
	r := &RAPLCap{Spec: hw.DefaultSpec(), Limit: 100}
	cfg := hw.Config{
		LS: hw.Alloc{Cores: 4, Freq: 2.2, LLCWays: 6},
		BE: hw.Alloc{Cores: 16, Freq: 2.0, LLCWays: 14},
	}
	// Below the limit: untouched.
	r.Observe(95)
	if got := r.Apply(cfg); got != cfg {
		t.Errorf("under-limit apply changed config: %v", got)
	}
	// One hot interval at +4 W: proportional response (1 + 4/2 = 3 steps).
	r.Observe(104)
	got := r.Apply(cfg)
	if got.LS.Freq != 1.9 || got.BE.Freq != 1.7 {
		t.Errorf("throttled config = %v, want −3 steps on both sides", got)
	}
	if r.Throttle() != 3 {
		t.Errorf("throttle = %d", r.Throttle())
	}
	// Sustained headroom releases one step at a time.
	r.Observe(90)
	if r.Throttle() != 2 {
		t.Errorf("throttle after release = %d", r.Throttle())
	}
	// In the hysteresis band (limit−headroom .. limit) nothing changes.
	r.Observe(99)
	if r.Throttle() != 2 {
		t.Errorf("hysteresis band changed throttle: %d", r.Throttle())
	}
}

func TestRAPLCapFloorsAtMinFrequency(t *testing.T) {
	r := &RAPLCap{Spec: hw.DefaultSpec(), Limit: 50}
	for i := 0; i < 50; i++ {
		r.Observe(120)
	}
	cfg := hw.Config{
		LS: hw.Alloc{Cores: 10, Freq: 2.2, LLCWays: 10},
		BE: hw.Alloc{Cores: 10, Freq: 1.4, LLCWays: 10},
	}
	got := r.Apply(cfg)
	if got.LS.Freq != 1.2 || got.BE.Freq != 1.2 {
		t.Errorf("fully throttled config = %v, want 1.2 GHz floor", got)
	}
	if err := got.Validate(hw.DefaultSpec()); err != nil {
		t.Fatal(err)
	}
}
