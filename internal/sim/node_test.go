package sim

import (
	"math"
	"testing"

	"sturgeon/internal/hw"
	"sturgeon/internal/workload"
)

func TestApplyValidatesAndClamps(t *testing.T) {
	n := QuietNode(workload.Memcached(), workload.Raytrace(), 1)
	bad := hw.Config{
		LS: hw.Alloc{Cores: 15, Freq: 1.6, LLCWays: 10},
		BE: hw.Alloc{Cores: 15, Freq: 1.6, LLCWays: 10},
	}
	if err := n.Apply(bad); err == nil {
		t.Error("oversubscribed config accepted")
	}
	offGrid := hw.Config{
		LS: hw.Alloc{Cores: 4, Freq: 1.63, LLCWays: 6},
		BE: hw.Alloc{Cores: 16, Freq: 2.9, LLCWays: 14},
	}
	if err := n.Apply(offGrid); err != nil {
		t.Fatalf("clampable config rejected: %v", err)
	}
	got := n.Config()
	if got.LS.Freq != 1.6 || got.BE.Freq != 2.2 {
		t.Errorf("frequencies not clamped to grid: %v", got)
	}
}

func TestStepBasicShape(t *testing.T) {
	n := QuietNode(workload.Memcached(), workload.Raytrace(), 1)
	cfg := hw.Config{
		LS: hw.Alloc{Cores: 6, Freq: 1.8, LLCWays: 8},
		BE: hw.Alloc{Cores: 14, Freq: 1.8, LLCWays: 12},
	}
	if err := n.Apply(cfg); err != nil {
		t.Fatal(err)
	}
	st := n.Step(1, 0.2*n.LSProfile.PeakQPS)
	if st.TrueP95 <= 0 || st.QoSFrac <= 0.9 {
		t.Errorf("healthy config unhealthy: p95=%v qosFrac=%v", st.TrueP95, st.QoSFrac)
	}
	if st.P95 != st.TrueP95 {
		t.Error("quiet node should measure truth exactly")
	}
	if st.BEThroughputUPS <= 0 {
		t.Error("no BE progress")
	}
	if st.TruePower <= n.PowerParams.IdleW {
		t.Errorf("power %v not above idle", st.TruePower)
	}
	if st.Contention < 1 {
		t.Errorf("contention %v below 1", st.Contention)
	}
}

func TestStepZeroLoad(t *testing.T) {
	n := QuietNode(workload.Xapian(), workload.Swaptions(), 2)
	if err := n.Apply(hw.SoloLS(n.Spec)); err != nil {
		t.Fatal(err)
	}
	st := n.Step(1, 0)
	if st.QoSFrac != 1 || st.TrueP95 != 0 {
		t.Errorf("zero load stats: %+v", st)
	}
}

func TestStepSaturationViolatesQoS(t *testing.T) {
	n := QuietNode(workload.Memcached(), workload.Ferret(), 3)
	tiny := hw.Config{
		LS: hw.Alloc{Cores: 2, Freq: 1.2, LLCWays: 2},
		BE: hw.Alloc{Cores: 18, Freq: 2.2, LLCWays: 18},
	}
	if err := n.Apply(tiny); err != nil {
		t.Fatal(err)
	}
	st := n.Step(1, 0.5*n.LSProfile.PeakQPS)
	if st.LSRho < 1 {
		t.Fatalf("expected saturation, rho = %v", st.LSRho)
	}
	if st.QoSFrac > 0.5 {
		t.Errorf("saturated service kept QoSFrac %v", st.QoSFrac)
	}
	if st.TrueP95 < n.LSProfile.QoSTargetS {
		t.Errorf("saturated p95 %v below target", st.TrueP95)
	}
}

func TestMorePowerWithMoreBEResources(t *testing.T) {
	n := QuietNode(workload.Memcached(), workload.Swaptions(), 4)
	small := hw.Config{
		LS: hw.Alloc{Cores: 4, Freq: 1.6, LLCWays: 6},
		BE: hw.Alloc{Cores: 8, Freq: 1.4, LLCWays: 8},
	}
	big := hw.Config{
		LS: hw.Alloc{Cores: 4, Freq: 1.6, LLCWays: 6},
		BE: hw.Alloc{Cores: 16, Freq: 2.2, LLCWays: 14},
	}
	qps := 0.2 * n.LSProfile.PeakQPS
	if err := n.Apply(small); err != nil {
		t.Fatal(err)
	}
	p1 := n.Step(1, qps).TruePower
	if err := n.Apply(big); err != nil {
		t.Fatal(err)
	}
	p2 := n.Step(2, qps).TruePower
	if p2 <= p1 {
		t.Errorf("bigger BE allocation did not draw more power: %v <= %v", p2, p1)
	}
}

// TestFig2PowerOverloadCorridor pins the paper's motivating observation
// (Fig. 2): with QoS-aware but power-unaware allocation at 20 % load —
// just-enough resources to the LS service, everything else to the BE
// application at maximum frequency — every one of the 18 pairs exceeds
// the budget, by roughly 2–13 %.
func TestFig2PowerOverloadCorridor(t *testing.T) {
	spec := hw.DefaultSpec()
	justEnough := map[string]hw.Alloc{
		// §III-B's narrative allocations at 20 % load.
		"memcached": {Cores: 4, Freq: 1.6, LLCWays: 6},
		"xapian":    {Cores: 4, Freq: 1.8, LLCWays: 5},
		"img-dnn":   {Cores: 4, Freq: 1.8, LLCWays: 5},
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, ls := range workload.LSServices() {
		for _, be := range workload.BEApps() {
			n := QuietNode(ls, be, 5)
			budget := LSPeakPower(n.Spec, n.PowerParams, n.Bus, ls)
			cfg := hw.Complement(spec, justEnough[ls.Name], spec.FreqMax)
			if err := n.Apply(cfg); err != nil {
				t.Fatal(err)
			}
			st := n.Step(1, 0.2*ls.PeakQPS)
			ratio := float64(st.TruePower / budget)
			if ratio <= 1.0 {
				t.Errorf("%s+%s: no overload (ratio %.3f)", ls.Name, be.Name, ratio)
			}
			if ratio > 1.20 {
				t.Errorf("%s+%s: overload %.3f beyond the paper's corridor", ls.Name, be.Name, ratio)
			}
			lo, hi = math.Min(lo, ratio), math.Max(hi, ratio)
		}
	}
	// The corridor should be meaningfully wide (paper: 2.04 %–12.57 %).
	if hi-lo < 0.03 {
		t.Errorf("overload spread [%.3f, %.3f] too narrow to differentiate pairs", lo, hi)
	}
}

func TestLSPeakPowerIsFeasibleBudget(t *testing.T) {
	for _, ls := range workload.LSServices() {
		n := QuietNode(ls, workload.Blackscholes(), 6)
		budget := LSPeakPower(n.Spec, n.PowerParams, n.Bus, ls)
		if budget <= n.PowerParams.IdleW {
			t.Fatalf("%s budget %v not above idle", ls.Name, budget)
		}
		// Running the LS solo at peak must not exceed its own budget.
		if err := n.Apply(hw.SoloLS(n.Spec)); err != nil {
			t.Fatal(err)
		}
		st := n.Step(1, ls.PeakQPS)
		if float64(st.TruePower/budget) > 1.0001 {
			t.Errorf("%s solo peak power %v exceeds own budget %v", ls.Name, st.TruePower, budget)
		}
		if st.QoSFrac < 0.95 {
			t.Errorf("%s solo peak violates QoS: frac %v", ls.Name, st.QoSFrac)
		}
	}
}

func TestSoloBEThroughputPositiveAndOrdered(t *testing.T) {
	spec := hw.DefaultSpec()
	for _, be := range workload.BEApps() {
		n := QuietNode(workload.Memcached(), be, 7)
		solo := SoloBEThroughput(spec, n.Bus, be)
		if solo <= 0 {
			t.Fatalf("%s solo throughput %v", be.Name, solo)
		}
		// A half-machine allocation must stay below solo.
		half := be.BERate(hw.Alloc{Cores: 10, Freq: 2.2, LLCWays: 10}, 1)
		if half.ThroughputUPS >= solo {
			t.Errorf("%s half-machine %v not below solo %v", be.Name, half.ThroughputUPS, solo)
		}
	}
}

func TestInterferenceLifecycle(t *testing.T) {
	n := NewNode(workload.Memcached(), workload.Raytrace(), 11)
	if err := n.Apply(hw.Config{
		LS: hw.Alloc{Cores: 6, Freq: 1.8, LLCWays: 8},
		BE: hw.Alloc{Cores: 14, Freq: 1.6, LLCWays: 12},
	}); err != nil {
		t.Fatal(err)
	}
	sawActive, sawIdle := false, false
	for i := 0; i < 400; i++ {
		st := n.Step(float64(i), 0.3*n.LSProfile.PeakQPS)
		if st.Interference {
			sawActive = true
		} else {
			sawIdle = true
		}
	}
	if !sawActive || !sawIdle {
		t.Errorf("interference episodes did not toggle: active=%v idle=%v", sawActive, sawIdle)
	}
}

func TestInterferenceRaisesLatency(t *testing.T) {
	quiet := QuietNode(workload.Memcached(), workload.Raytrace(), 12)
	noisy := QuietNode(workload.Memcached(), workload.Raytrace(), 12)
	// Force a permanently active, strong episode on the noisy node.
	noisy.Interf = &Interference{
		StartProb: 1, MeanDur: 1e9,
		SvcFactorLo: 1.5, SvcFactorHi: 1.5,
		BwLoGBs: 10, BwHiGBs: 10,
		rng: noisy.rng,
	}
	cfg := hw.Config{
		LS: hw.Alloc{Cores: 5, Freq: 1.6, LLCWays: 7},
		BE: hw.Alloc{Cores: 15, Freq: 1.6, LLCWays: 13},
	}
	if err := quiet.Apply(cfg); err != nil {
		t.Fatal(err)
	}
	if err := noisy.Apply(cfg); err != nil {
		t.Fatal(err)
	}
	qps := 0.25 * quiet.LSProfile.PeakQPS
	a := quiet.Step(1, qps)
	b := noisy.Step(1, qps)
	if b.TrueP95 <= a.TrueP95 {
		t.Errorf("interference did not raise p95: %v <= %v", b.TrueP95, a.TrueP95)
	}
	if b.QoSFrac > a.QoSFrac {
		t.Errorf("interference did not hurt QoS fraction: %v > %v", b.QoSFrac, a.QoSFrac)
	}
}

func TestMeasurementNoiseBiasSmall(t *testing.T) {
	n := NewNode(workload.Memcached(), workload.Swaptions(), 13)
	n.Interf = None()
	if err := n.Apply(hw.Config{
		LS: hw.Alloc{Cores: 8, Freq: 1.8, LLCWays: 8},
		BE: hw.Alloc{Cores: 12, Freq: 1.4, LLCWays: 12},
	}); err != nil {
		t.Fatal(err)
	}
	var ratioSum float64
	const rounds = 500
	for i := 0; i < rounds; i++ {
		st := n.Step(float64(i), 0.3*n.LSProfile.PeakQPS)
		ratioSum += st.P95 / st.TrueP95
	}
	mean := ratioSum / rounds
	if math.Abs(mean-1) > 0.02 {
		t.Errorf("measured/true p95 mean ratio %v, want ≈1", mean)
	}
}
