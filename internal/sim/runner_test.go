package sim

import (
	"testing"

	"sturgeon/internal/control"
	"sturgeon/internal/hw"
	"sturgeon/internal/workload"
)

func TestRunnerStaticHealthyConfig(t *testing.T) {
	ls, be := workload.Memcached(), workload.Raytrace()
	node := QuietNode(ls, be, 21)
	budget := LSPeakPower(node.Spec, node.PowerParams, node.Bus, ls)
	cfg := hw.Config{
		LS: hw.Alloc{Cores: 8, Freq: 2.0, LLCWays: 10},
		BE: hw.Alloc{Cores: 12, Freq: 1.2, LLCWays: 10},
	}
	if err := node.Apply(cfg); err != nil {
		t.Fatal(err)
	}
	r := Runner{
		Node:      node,
		Ctrl:      control.Static{Cfg: cfg},
		Budget:    budget,
		Trace:     workload.Constant(0.2),
		DurationS: 50,
	}
	res := r.Run()
	if len(res.Intervals) != 50 {
		t.Fatalf("intervals = %d, want 50", len(res.Intervals))
	}
	if res.QoSRate < 0.99 {
		t.Errorf("QoSRate = %v, want ≈1 for a generous config", res.QoSRate)
	}
	if res.NormBEThroughput <= 0 || res.NormBEThroughput >= 1 {
		t.Errorf("NormBEThroughput = %v, want in (0,1)", res.NormBEThroughput)
	}
	if res.Controller != "static" {
		t.Errorf("Controller = %q", res.Controller)
	}
}

func TestRunnerDetectsOverload(t *testing.T) {
	ls, be := workload.Memcached(), workload.Swaptions()
	node := QuietNode(ls, be, 22)
	budget := LSPeakPower(node.Spec, node.PowerParams, node.Bus, ls)
	// Power-unaware configuration: BE at max frequency on 16 cores.
	cfg := hw.Complement(node.Spec, hw.Alloc{Cores: 4, Freq: 1.6, LLCWays: 6}, node.Spec.FreqMax)
	if err := node.Apply(cfg); err != nil {
		t.Fatal(err)
	}
	r := Runner{
		Node:      node,
		Ctrl:      control.Static{Cfg: cfg},
		Budget:    budget,
		Trace:     workload.Constant(0.2),
		DurationS: 20,
	}
	res := r.Run()
	if res.OverloadFrac != 1 {
		t.Errorf("OverloadFrac = %v, want 1 for a power-unaware config", res.OverloadFrac)
	}
	if res.PeakPowerRatio <= 1 {
		t.Errorf("PeakPowerRatio = %v, want > 1", res.PeakPowerRatio)
	}
}

func TestRunnerAppliesControllerDecisions(t *testing.T) {
	ls, be := workload.Xapian(), workload.Blackscholes()
	node := QuietNode(ls, be, 23)
	start := hw.SoloLS(node.Spec)
	if err := node.Apply(start); err != nil {
		t.Fatal(err)
	}
	target := hw.Config{
		LS: hw.Alloc{Cores: 10, Freq: 2.0, LLCWays: 10},
		BE: hw.Alloc{Cores: 10, Freq: 1.4, LLCWays: 10},
	}
	r := Runner{
		Node:      node,
		Ctrl:      control.Static{Cfg: target},
		Budget:    150,
		Trace:     workload.Constant(0.3),
		DurationS: 3,
	}
	res := r.Run()
	if res.Intervals[0].Config != start {
		t.Errorf("first interval config = %v, want the initial %v", res.Intervals[0].Config, start)
	}
	if res.Intervals[1].Config != target {
		t.Errorf("second interval config = %v, want controller's %v", res.Intervals[1].Config, target)
	}
	// BE had zero cores in interval 0 — no progress.
	if res.Intervals[0].BEThroughputUPS != 0 {
		t.Error("BE progressed with zero cores")
	}
	if res.Intervals[1].BEThroughputUPS <= 0 {
		t.Error("BE made no progress after reallocation")
	}
}

func TestRunnerZeroQPSTraceQoSPerfect(t *testing.T) {
	node := QuietNode(workload.ImgDNN(), workload.Facesim(), 24)
	cfg := hw.SoloLS(node.Spec)
	if err := node.Apply(cfg); err != nil {
		t.Fatal(err)
	}
	r := Runner{
		Node: node, Ctrl: control.Static{Cfg: cfg},
		Budget: 150, Trace: workload.Constant(0), DurationS: 5,
	}
	res := r.Run()
	if res.QoSRate != 1 {
		t.Errorf("QoSRate with no load = %v, want 1", res.QoSRate)
	}
}
