package sim

import (
	"testing"

	"sturgeon/internal/hw"
	"sturgeon/internal/workload"
)

func BenchmarkNodeStep(b *testing.B) {
	n := NewNode(workload.Memcached(), workload.Raytrace(), 1)
	if err := n.Apply(hw.Config{
		LS: hw.Alloc{Cores: 8, Freq: 1.8, LLCWays: 8},
		BE: hw.Alloc{Cores: 12, Freq: 1.6, LLCWays: 12},
	}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.Step(float64(i), 20000)
	}
}

// BenchmarkNodeStepUncached disables the latency cache, so every step
// pays the full analytic solve — the worst case a fleet node can hit.
func BenchmarkNodeStepUncached(b *testing.B) {
	n := NewNode(workload.Memcached(), workload.Raytrace(), 1)
	n.Latency = nil
	if err := n.Apply(hw.Config{
		LS: hw.Alloc{Cores: 8, Freq: 1.8, LLCWays: 8},
		BE: hw.Alloc{Cores: 12, Freq: 1.6, LLCWays: 12},
	}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.Step(float64(i), 20000)
	}
}

func BenchmarkLSPeakPower(b *testing.B) {
	n := QuietNode(workload.Memcached(), workload.Raytrace(), 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		LSPeakPower(n.Spec, n.PowerParams, n.Bus, n.LSProfile)
	}
}
