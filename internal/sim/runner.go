package sim

import (
	"sturgeon/internal/control"
	"sturgeon/internal/faults"
	"sturgeon/internal/hw"
	"sturgeon/internal/power"
	"sturgeon/internal/workload"
)

// Runner drives one co-location experiment: it steps the node at 1 s
// intervals under a load trace, feeds each interval's telemetry to a
// controller, and applies the controller's configuration decisions —
// the outer loop of the paper's evaluation (§VII).
type Runner struct {
	Node *Node
	Ctrl control.Controller
	// Budget is the node power cap handed to the controller and used for
	// overload accounting.
	Budget power.Watts
	// Trace maps time to load fraction of the LS service's peak.
	Trace workload.Trace
	// DurationS is the run length in seconds.
	DurationS int
	// Faults optionally injects deterministic telemetry/actuator/crash
	// faults between the node and the controller. Nil runs clean.
	Faults *faults.Injector
}

// Result aggregates a run.
type Result struct {
	Controller string
	Intervals  []IntervalStats

	// QoSRate is the query-weighted fraction of queries completed within
	// the QoS target (Fig. 9's metric).
	QoSRate float64
	// MeanBEThroughputUPS is the time-averaged best-effort progress.
	MeanBEThroughputUPS float64
	// NormBEThroughput is MeanBEThroughputUPS normalized to the BE
	// application's solo run (Fig. 10's metric).
	NormBEThroughput float64
	// OverloadFrac is the fraction of intervals whose true power exceeded
	// the budget; PeakPowerRatio the maximum true power/budget ratio.
	OverloadFrac   float64
	PeakPowerRatio float64
	// BreakerTrips counts sustained overloads (more than two consecutive
	// above-budget intervals) — the facility-breaker view of §II-A:
	// breakers ride through transient jitter but trip on sustained
	// excursions. The breaker is re-armed after each trip so every
	// sustained episode is counted.
	BreakerTrips int
	// Faults tallies the injected faults (zero without a fault plan).
	Faults faults.Counters
}

// Run executes the experiment and returns aggregated statistics.
func (r *Runner) Run() Result {
	node := r.Node
	budget := power.NewBudget(r.Budget)
	breaker := power.Breaker{Limit: r.Budget, Tolerance: 2}
	trips := 0
	inj := r.Faults

	var (
		intervals = make([]IntervalStats, 0, r.DurationS)
		wQoS      float64 // Σ qps·qosFrac
		wQPS      float64 // Σ qps
		sumBE     float64
	)
	for i := 0; i < r.DurationS; i++ {
		t := float64(i + 1)
		qps := r.Trace(t) * node.LSProfile.PeakQPS

		if inj.Crashed(i) {
			// Total outage: every offered query is lost (violated), no
			// best-effort progress, no power draw, no telemetry for the
			// controller to react to.
			intervals = append(intervals, IntervalStats{
				Time: t, QPS: qps, Faults: inj.Flags(i),
			})
			wQPS += qps
			continue
		}
		if i > 0 && inj.CrashedAt(i-1) {
			// Reboot: the queue drained while the node was down and the
			// machine comes back in its boot configuration.
			node.ResetQueue()
			_ = node.Apply(hw.SoloLS(node.Spec))
		}

		st := node.Step(t, qps)
		if inj != nil {
			st.Power = inj.PerturbPower(i, st.Power)
			st.P95 = inj.PerturbP95(i, st.P95)
			st.Faults = inj.Flags(i)
		}
		budget.Observe(st.TruePower)
		if breaker.Observe(st.TruePower) {
			trips++
			breaker.Reset()
		}
		intervals = append(intervals, st)

		wQoS += st.QPS * st.QoSFrac
		wQPS += st.QPS
		sumBE += st.BEThroughputUPS

		obs := control.Observation{
			Time:         t,
			QPS:          st.QPS,
			P95:          st.P95,
			Target:       node.LSProfile.QoSTargetS,
			Power:        st.Power,
			Budget:       r.Budget,
			BEThroughput: st.BEThroughputUPS,
			Config:       st.Config,
		}
		next := r.Ctrl.Decide(obs)
		if next != st.Config {
			// Controllers may emit configurations on the frequency grid
			// edge; Apply clamps and validates. An invalid decision is a
			// controller bug surfaced by keeping the old configuration.
			// The injector may additionally drop or mangle the write.
			inj.Actuate(i, st.Config, next, node.Apply)
		}
	}

	res := Result{
		Controller:          r.Ctrl.Name(),
		Intervals:           intervals,
		MeanBEThroughputUPS: sumBE / float64(max(1, r.DurationS)),
		OverloadFrac:        budget.OverloadFraction(),
		PeakPowerRatio:      budget.PeakRatio(),
		BreakerTrips:        trips,
	}
	if inj != nil {
		res.Faults = inj.C
	}
	if wQPS > 0 {
		res.QoSRate = wQoS / wQPS
	} else {
		res.QoSRate = 1
	}
	if solo := SoloBEThroughput(node.Spec, node.Bus, node.BEProfile); solo > 0 {
		res.NormBEThroughput = res.MeanBEThroughputUPS / solo
	}
	return res
}
