package sim

import (
	"fmt"
	"math"
	"math/rand"

	"sturgeon/internal/cache"
	"sturgeon/internal/faults"
	"sturgeon/internal/hw"
	"sturgeon/internal/power"
	"sturgeon/internal/queueing"
	"sturgeon/internal/workload"
)

// IntervalStats reports one simulated 1 s interval. Fields prefixed True
// are ground truth the controllers never see; the measured fields carry
// realistic telemetry noise.
type IntervalStats struct {
	Time float64
	QPS  float64

	// TrueP95 is the physics tail latency; P95 the noisy measurement.
	TrueP95 float64
	P95     float64
	// QoSFrac is the true fraction of the interval's queries finishing
	// within the QoS target (the paper's guarantee-rate contribution).
	QoSFrac float64

	// BEThroughputUPS is best-effort progress in units/s.
	BEThroughputUPS float64

	// TruePower is the physics draw; Power the RAPL-style reading.
	TruePower power.Watts
	Power     power.Watts

	LSUtil, BEUtil float64
	LSRho          float64
	Contention     float64
	Interference   bool
	Config         hw.Config

	// Faults is the fault-injection mask active this interval (zero when
	// the run carries no fault plan). Set by the runner, not by Step.
	Faults faults.Flags
}

// Node is the simulated power-constrained server. It exposes the same
// actuation surface as the paper's Table III tools — core partitioning,
// per-allocation DVFS, LLC way partitioning and a sampled power meter —
// over synthetic physics.
type Node struct {
	Spec        hw.Spec
	PowerParams power.Params
	Bus         cache.MemBus
	LSProfile   workload.Profile
	BEProfile   workload.Profile
	Meter       *power.Meter
	Interf      *Interference

	// P95NoiseSD is the baseline lognormal sd of latency measurement
	// noise; noise grows further as the service nears saturation.
	P95NoiseSD float64
	// QoSPercentile is the tail percentile tracked (default 0.95, the
	// paper's primary metric; Fig. 9's narrative also quotes 99 %-iles).
	QoSPercentile float64
	// UseDES switches the latency engine from the analytic G/G/c
	// approximation to per-interval discrete-event simulation with
	// sampled queries — slower and noisier, used by the queue-engine
	// ablation as the higher-fidelity reference.
	UseDES bool

	// Latency memoizes analytic sojourn solves. NewNode gives every node
	// its own cache; a cluster overwrites it with one shared instance so
	// nodes seeing the same arrival rate (round-robin dispatch, repeated
	// trace levels) solve each queue once fleet-wide. Solves are pure, so
	// sharing never changes results — nil disables memoization entirely.
	Latency *queueing.Cache

	rng *rand.Rand
	cfg hw.Config
	// lat is reusable scratch for the analytic latency engine, keeping
	// the steady-state step allocation-free.
	lat queueing.Evaluator
	// backlog carries queued-but-unserved queries across intervals: a
	// service pushed past saturation does not recover instantly when
	// capacity returns — the queue drains over the following intervals
	// with elevated latency, exactly the gradual degradation feedback
	// controllers rely on for a usable gradient.
	backlog float64
}

// NewNode builds a node with the paper's default platform, the default
// power physics and interference model, seeded deterministically.
func NewNode(ls, be workload.Profile, seed int64) *Node {
	rng := rand.New(rand.NewSource(seed))
	n := &Node{
		Spec:        hw.DefaultSpec(),
		PowerParams: power.DefaultParams(),
		Bus:         cache.DefaultBus(),
		LSProfile:   ls,
		BEProfile:   be,
		Meter:       power.NewMeter(0.8, rng.NormFloat64),
		Interf:      DefaultInterference(rng),
		P95NoiseSD:  0.04,
		Latency:     queueing.NewCache(),
		rng:         rng,
	}
	n.cfg = hw.SoloLS(n.Spec)
	return n
}

// QuietNode builds a node without interference or measurement noise —
// the dedicated-cluster profiling environment of §V-A.
func QuietNode(ls, be workload.Profile, seed int64) *Node {
	n := NewNode(ls, be, seed)
	n.Meter = power.NewMeter(0, nil)
	n.Interf = None()
	n.P95NoiseSD = 0
	return n
}

// ProfilingNode builds a node with realistic measurement noise but no
// interference episodes: the environment model-training sweeps run in.
// Trained models therefore carry irreducible measurement error (their
// Fig. 6/7 R² sits below 1) yet never learn the interference the
// balancer exists to absorb.
func ProfilingNode(ls, be workload.Profile, seed int64) *Node {
	n := NewNode(ls, be, seed)
	n.Interf = None()
	return n
}

// Deterministic reports whether Step is a pure function of (t, qps,
// config, backlog) — no interference episodes possible, no meter or
// latency measurement noise, and the analytic latency engine (the DES
// engine samples queries from the node rng). Only then may the
// event-driven cluster engine replay a previous interval's stats
// instead of stepping: a skipped Step must consume no randomness and
// mutate no state the next real Step could observe.
func (n *Node) Deterministic() bool {
	return n.Meter.Noiseless() && n.Interf.Quiet() && n.P95NoiseSD <= 0 && !n.UseDES
}

// Apply sets the resource configuration (validating against the spec),
// like writing cpuset cgroups, resctrl masks and ACPI frequency files.
func (n *Node) Apply(cfg hw.Config) error {
	cfg.LS.Freq = n.Spec.ClampFreq(cfg.LS.Freq)
	cfg.BE.Freq = n.Spec.ClampFreq(cfg.BE.Freq)
	if err := cfg.Validate(n.Spec); err != nil {
		return fmt.Errorf("sim: apply: %w", err)
	}
	n.cfg = cfg
	return nil
}

// Config returns the configuration currently in force.
func (n *Node) Config() hw.Config { return n.cfg }

// physics solves the steady state of one interval: a short fixed-point
// iteration couples the two applications through memory-bus contention.
// It returns the LS state, the BE state, the contention multiplier, and
// the LS power utilization.
func (n *Node) physics(qps, svcFactor, extraBW float64) (workload.LSState, workload.BEState, float64, float64) {
	contention := 1.0
	var ls workload.LSState
	var be workload.BEState
	for i := 0; i < 3; i++ {
		ls = n.LSProfile.LSRate(n.cfg.LS, qps, contention)
		be = n.BEProfile.BERate(n.cfg.BE, contention)
		demand := ls.BandwidthGBs + be.BandwidthGBs + extraBW
		contention = n.Bus.Contention(demand)
	}
	// Interference inflates LS per-query time through *stalls* on
	// unmanaged shared resources. Stalled cycles occupy the core (so the
	// queueing capacity shrinks by the full factor) but toggle little
	// switching capacitance, so dynamic power tracks the pre-inflation
	// busy fraction.
	powerUtil := math.Min(ls.Rho, 1)
	ls.SvcMean *= svcFactor
	ls.Rho *= svcFactor
	ls.Util = math.Min(ls.Rho, 1)
	return ls, be, contention, powerUtil
}

// Step advances one interval of dt = 1 s at the given offered load and
// returns its statistics. The configuration applied beforehand is in
// force for the whole interval.
func (n *Node) Step(t, qps float64) IntervalStats {
	svcFactor, extraBW, interfering := 1.0, 0.0, false
	if n.Interf != nil {
		svcFactor, extraBW, interfering = n.Interf.Step()
	}
	ls, be, contention, lsPowerUtil := n.physics(qps, svcFactor, extraBW)

	// Queue backlog dynamics: compute the average extra wait imposed by
	// queries left over from previous intervals, then update the backlog
	// with this interval's net flow.
	backlogWait := n.stepBacklog(qps, ls.SvcMean)

	// Latency: the chosen queueing engine on the effective service time,
	// shifted by the backlog drain wait.
	target := n.LSProfile.QoSTargetS
	pct := n.QoSPercentile
	if pct <= 0 || pct >= 1 {
		pct = 0.95
	}
	var trueP95, qosFrac float64
	if n.UseDES {
		trueP95, qosFrac = n.desLatency(qps, ls.SvcMean, target, backlogWait, pct)
	} else {
		q := queueing.Analytic{
			Lambda:    qps,
			Servers:   n.cfg.LS.Cores,
			SvcMean:   ls.SvcMean,
			SvcCV:     n.LSProfile.SvcCV,
			ArrivalCV: n.LSProfile.ArrivalCV,
			IntervalS: 1,
		}
		budget := target - backlogWait
		p95, frac := n.Latency.Solve(q, pct, budget, &n.lat)
		trueP95 = p95 + backlogWait
		if budget > 0 {
			qosFrac = frac
		}
	}
	if qps <= 0 && n.backlog <= 0 {
		trueP95, qosFrac = 0, 1
	}

	// Power: BE cores spin at full residency; LS cores track load.
	beUtil := 0.0
	if n.cfg.BE.Cores > 0 {
		beUtil = 1.0
	}
	loads := []power.CoreLoad{
		{Cores: n.cfg.LS.Cores, Freq: n.cfg.LS.Freq, Util: lsPowerUtil, Activity: n.LSProfile.Activity},
		{Cores: n.cfg.BE.Cores, Freq: n.cfg.BE.Freq, Util: beUtil, Activity: n.BEProfile.Activity},
	}
	activeWays := n.cfg.LS.LLCWays + n.cfg.BE.LLCWays
	dram := n.Bus.Achieved(ls.BandwidthGBs + be.BandwidthGBs + extraBW)
	truePower := n.PowerParams.Total(loads, activeWays, n.Spec.LLCWays, dram)
	measPower := truePower
	if n.Meter != nil {
		measPower = n.Meter.Read(truePower, 1)
	}

	// Latency measurement noise grows near saturation, where a 1 s
	// window of a heavy tail is an unstable estimator.
	measP95 := trueP95
	if n.P95NoiseSD > 0 && trueP95 > 0 && !math.IsInf(trueP95, 1) {
		sd := n.P95NoiseSD
		if ls.Rho > 0.75 {
			sd += 0.10 * math.Min((ls.Rho-0.75)/0.25, 2)
		}
		measP95 = trueP95 * math.Exp(n.rng.NormFloat64()*sd)
	}

	return IntervalStats{
		Time:            t,
		QPS:             qps,
		TrueP95:         trueP95,
		P95:             measP95,
		QoSFrac:         qosFrac,
		BEThroughputUPS: be.ThroughputUPS,
		TruePower:       truePower,
		Power:           measPower,
		LSUtil:          ls.Util,
		BEUtil:          be.Util,
		LSRho:           ls.Rho,
		Contention:      contention,
		Interference:    interfering,
		Config:          n.cfg,
	}
}

// desLatency runs a per-interval discrete-event simulation (sampling at
// most ~20 k queries and scaling) and returns the tail latency and the
// in-target fraction, both shifted by the carried-backlog wait.
func (n *Node) desLatency(qps, svcMean, target, backlogWait, pct float64) (float64, float64) {
	if n.cfg.LS.Cores <= 0 || qps <= 0 {
		return math.Inf(1), 0
	}
	cv := n.LSProfile.ArrivalCV
	if cv <= 0 {
		cv = 1
	}
	batch := (cv*cv + 1) / 2 // CVa² ≈ 2m−1 for geometric batches
	d := &queueing.DES{
		Servers:   n.cfg.LS.Cores,
		SvcMean:   svcMean,
		SvcCV:     n.LSProfile.SvcCV,
		BatchMean: batch,
		Rng:       n.rng,
	}
	lat := d.Run(qps, 0.2, 1)
	if lat.N() == 0 {
		return math.Inf(1), 0
	}
	p := lat.Quantile(pct) + backlogWait
	frac := 0.0
	if budget := target - backlogWait; budget > 0 {
		frac = lat.FractionWithin(budget)
	}
	return p, frac
}

// stepBacklog advances the carried queue by one 1 s interval and returns
// the average extra wait new arrivals experienced behind it.
func (n *Node) stepBacklog(qps, svcMean float64) float64 {
	if n.cfg.LS.Cores <= 0 || svcMean <= 0 {
		// No servers: everything offered this interval queues.
		n.backlog += qps
		return math.Inf(1)
	}
	capacity := float64(n.cfg.LS.Cores) / svcMean // queries/s
	start := n.backlog
	net := qps - capacity // backlog growth rate while positive

	var avg float64
	end := start + net
	switch {
	case end >= 0 && start >= 0:
		avg = start + net/2
	case start > 0 && end < 0:
		// Drains to zero partway through the interval.
		t0 := start / (capacity - qps)
		avg = (start / 2) * t0
		end = 0
	default:
		avg, end = 0, 0
	}
	if end < 0 {
		end = 0
	}
	// Client timeouts bound the queue: requests older than ~half a second
	// are abandoned (they still count as violated in the interval they
	// were offered), so an overload episode cannot poison minutes of
	// subsequent service.
	if limit := 0.5 * capacity; end > limit {
		end = limit
	}
	n.backlog = end
	if avg < 0 {
		avg = 0
	}
	return avg / capacity
}

// Backlog returns the queries currently carried over (ground truth).
func (n *Node) Backlog() float64 { return n.backlog }

// ResetQueue clears carried backlog — used between profiling samples,
// where each measured configuration must start from a drained service
// (the paper's offline sweeps restart the load generator per point).
func (n *Node) ResetQueue() { n.backlog = 0 }

// SoloBEThroughput returns the BE application's throughput running alone
// on the whole machine at maximum frequency — the normalization basis of
// Fig. 10.
func SoloBEThroughput(spec hw.Spec, bus cache.MemBus, be workload.Profile) float64 {
	alloc := hw.SoloBE(spec).BE
	contention := 1.0
	var st workload.BEState
	for i := 0; i < 3; i++ {
		st = be.BERate(alloc, contention)
		contention = bus.Contention(st.BandwidthGBs)
	}
	return st.ThroughputUPS
}

// LSPeakPower returns the node's power draw with the LS service running
// alone at peak load on all resources at maximum frequency — the paper's
// power-budget definition (§III-B).
func LSPeakPower(spec hw.Spec, params power.Params, bus cache.MemBus, ls workload.Profile) power.Watts {
	alloc := hw.SoloLS(spec).LS
	contention := 1.0
	var st workload.LSState
	for i := 0; i < 3; i++ {
		st = ls.LSRate(alloc, ls.PeakQPS, contention)
		contention = bus.Contention(st.BandwidthGBs)
	}
	loads := []power.CoreLoad{
		{Cores: alloc.Cores, Freq: alloc.Freq, Util: st.Util, Activity: ls.Activity},
	}
	return params.Total(loads, spec.LLCWays, spec.LLCWays, bus.Achieved(st.BandwidthGBs))
}
