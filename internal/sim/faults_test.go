package sim

import (
	"fmt"
	"reflect"
	"testing"

	"sturgeon/internal/control"
	"sturgeon/internal/faults"
	"sturgeon/internal/hw"
	"sturgeon/internal/workload"
)

func chaosRunner(seed int64, plan *faults.Plan) *Runner {
	ls, be := workload.Memcached(), workload.Raytrace()
	node := NewNode(ls, be, seed)
	spec := node.Spec
	cfg := hw.Config{
		LS: hw.Alloc{Cores: 12, Freq: 2.0, LLCWays: 12},
		BE: hw.Alloc{Cores: 8, Freq: 1.6, LLCWays: 8},
	}
	if err := node.Apply(cfg); err != nil {
		panic(err)
	}
	return &Runner{
		Node:      node,
		Ctrl:      control.Static{Cfg: cfg},
		Budget:    LSPeakPower(spec, node.PowerParams, node.Bus, ls),
		Trace:     workload.Constant(0.4),
		DurationS: 240,
		Faults:    faults.NewInjector(plan, seed+1),
	}
}

// TestChaosRunIsReproducible is the acceptance property of the fault
// layer: the same seed and fault plan produce byte-identical Result
// summaries across two independent invocations.
func TestChaosRunIsReproducible(t *testing.T) {
	run := func() Result {
		plan := faults.New(faults.DefaultSpec(), 77, 240)
		return chaosRunner(5, plan).Run()
	}
	a, b := run(), run()
	sa, sb := fmt.Sprintf("%+v", a), fmt.Sprintf("%+v", b)
	if sa != sb {
		t.Fatal("identical seeded chaos runs diverged")
	}
	if !reflect.DeepEqual(a.Faults, b.Faults) {
		t.Fatalf("fault counters diverged: %+v vs %+v", a.Faults, b.Faults)
	}
}

func TestRunnerCountsInjectedFaults(t *testing.T) {
	plan := faults.Manual(240,
		faults.Episode{Kind: faults.PowerStuck, Start: 10, End: 20},
		faults.Episode{Kind: faults.LatencyDrop, Start: 30, End: 40},
		faults.Episode{Kind: faults.NodeCrash, Start: 100, End: 130},
	)
	res := chaosRunner(5, plan).Run()
	if res.Faults.PowerStuck != 10 {
		t.Errorf("PowerStuck = %d, want 10", res.Faults.PowerStuck)
	}
	if res.Faults.LatencyDrop != 10 {
		t.Errorf("LatencyDrop = %d, want 10", res.Faults.LatencyDrop)
	}
	if res.Faults.CrashIntervals != 30 {
		t.Errorf("CrashIntervals = %d, want 30", res.Faults.CrashIntervals)
	}
	if len(res.Intervals) != 240 {
		t.Fatalf("intervals %d", len(res.Intervals))
	}
	// Crash intervals carry the fault flag and no service.
	iv := res.Intervals[110]
	if !iv.Faults.Has(faults.NodeCrash) {
		t.Error("crash interval not flagged")
	}
	if iv.QoSFrac != 0 || iv.TruePower != 0 || iv.BEThroughputUPS != 0 {
		t.Errorf("crashed node still serving: %+v", iv)
	}
	if iv.QPS <= 0 {
		t.Error("crashed interval lost its offered-load accounting")
	}
}

func TestCrashOutageDegradesQoSProportionally(t *testing.T) {
	clean := chaosRunner(5, nil).Run()
	crashed := chaosRunner(5, faults.Manual(240,
		faults.Episode{Kind: faults.NodeCrash, Start: 100, End: 130},
	)).Run()
	if crashed.QoSRate >= clean.QoSRate {
		t.Fatalf("30-interval outage did not hurt QoS: %.4f vs %.4f",
			crashed.QoSRate, clean.QoSRate)
	}
	// The outage covers 30/240 of a constant-load run, so the guarantee
	// rate should drop by roughly that share — not collapse entirely.
	loss := clean.QoSRate - crashed.QoSRate
	if loss < 0.08 || loss > 0.20 {
		t.Errorf("QoS loss %.4f implausible for a 12.5%% outage", loss)
	}
	// Recovery actually happens: the tail of the run serves again.
	tail := crashed.Intervals[len(crashed.Intervals)-1]
	if tail.QoSFrac <= 0.5 || tail.TruePower <= 0 {
		t.Errorf("node did not recover after crash: %+v", tail)
	}
}

func TestActuatorDropFreezesConfig(t *testing.T) {
	ls, be := workload.Memcached(), workload.Raytrace()
	node := NewNode(ls, be, 3)
	start := hw.Config{
		LS: hw.Alloc{Cores: 12, Freq: 2.0, LLCWays: 12},
		BE: hw.Alloc{Cores: 8, Freq: 1.6, LLCWays: 8},
	}
	if err := node.Apply(start); err != nil {
		t.Fatal(err)
	}
	want := hw.Config{
		LS: hw.Alloc{Cores: 14, Freq: 2.2, LLCWays: 14},
		BE: hw.Alloc{Cores: 6, Freq: 1.4, LLCWays: 6},
	}
	// Every write is dropped: the config in force never moves even
	// though the controller demands a change each interval.
	r := &Runner{
		Node:      node,
		Ctrl:      control.Static{Cfg: want},
		Budget:    LSPeakPower(node.Spec, node.PowerParams, node.Bus, ls),
		Trace:     workload.Constant(0.3),
		DurationS: 20,
		Faults: faults.NewInjector(faults.Manual(20,
			faults.Episode{Kind: faults.ActuatorDrop, Start: 0, End: 20},
		), 9),
	}
	res := r.Run()
	for i, iv := range res.Intervals {
		if iv.Config != start {
			t.Fatalf("interval %d: dropped writes still moved config to %v", i, iv.Config)
		}
	}
	if res.Faults.ActuatorDrop != 20 {
		t.Errorf("ActuatorDrop = %d, want 20", res.Faults.ActuatorDrop)
	}
}
