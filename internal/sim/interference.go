// Package sim implements the simulated power-constrained server node:
// the ground-truth physics (workload behaviour × cache contention ×
// queueing × power), the Table-III actuator surface (cpuset / CAT /
// ACPI-DVFS / RAPL analogues), measurement noise, and the unmanaged
// interference that motivates the paper's resource balancer.
package sim

import "math/rand"

// Interference models contention on unmanaged shared resources and
// uncontrollable system activity (OS interrupt handling, network stack,
// co-runner bursts on the memory path). Episodes begin at random, last a
// geometrically distributed number of intervals, inflate the LS service's
// per-query work and add memory-bus demand. Crucially, the effect is
// invisible to Sturgeon's offline-trained predictor — only the feedback
// balancer can react to it (§VI).
type Interference struct {
	// StartProb is the per-interval probability a new episode begins.
	StartProb float64
	// MeanDur is the mean episode length in intervals (geometric).
	MeanDur float64
	// SvcFactorLo/Hi bound the uniform service-time inflation factor.
	SvcFactorLo, SvcFactorHi float64
	// SevereProb is the chance an episode is severe, drawing its factor
	// from SevereFactorLo/Hi instead — the rare deep interference (e.g.
	// a co-scheduled batch job thrashing the memory path) that violates
	// even services with generous latency targets.
	SevereProb                     float64
	SevereFactorLo, SevereFactorHi float64
	// BwLoGBs/BwHiGBs bound the uniform extra memory-bus demand.
	BwLoGBs, BwHiGBs float64

	rng       *rand.Rand
	active    bool
	svcFactor float64
	extraBW   float64
}

// DefaultInterference returns the episode model used by the evaluation:
// a new episode roughly every 170 intervals, lasting ~8 intervals,
// inflating LS work by 10–30 % (20 % of episodes: 70–110 %) with
// 2–8 GB/s of background traffic.
func DefaultInterference(rng *rand.Rand) *Interference {
	return &Interference{
		StartProb:      0.006,
		MeanDur:        8,
		SvcFactorLo:    1.10,
		SvcFactorHi:    1.30,
		SevereProb:     0.20,
		SevereFactorLo: 1.7,
		SevereFactorHi: 2.1,
		BwLoGBs:        2,
		BwHiGBs:        8,
		rng:            rng,
	}
}

// None returns a disabled interference source (for calibration runs and
// model-training sweeps, which the paper also performs interference-free
// on a dedicated cluster).
func None() *Interference {
	return &Interference{}
}

// Quiet reports whether Step is guaranteed to return (1, 0, false)
// forever without consuming randomness: either the source is disabled
// (nil rng, as built by None) or no episode is active and none can
// start. The event-driven cluster engine relies on this to skip
// stepping a node without desynchronizing its rng stream.
func (in *Interference) Quiet() bool {
	if in == nil || in.rng == nil {
		return true
	}
	return !in.active && in.StartProb <= 0
}

// Step advances one interval and returns the LS service-time factor
// (≥ 1), the extra bus demand in GB/s, and whether an episode is active.
func (in *Interference) Step() (svcFactor, extraBWGBs float64, active bool) {
	if in.rng == nil {
		return 1, 0, false
	}
	if in.active {
		// Geometric continuation: leave with probability 1/MeanDur.
		if in.MeanDur <= 1 || in.rng.Float64() < 1/in.MeanDur {
			in.active = false
		}
	}
	if !in.active && in.StartProb > 0 && in.rng.Float64() < in.StartProb {
		in.active = true
		lo, hi := in.SvcFactorLo, in.SvcFactorHi
		if in.SevereProb > 0 && in.rng.Float64() < in.SevereProb {
			lo, hi = in.SevereFactorLo, in.SevereFactorHi
		}
		in.svcFactor = lo + in.rng.Float64()*(hi-lo)
		in.extraBW = in.BwLoGBs + in.rng.Float64()*(in.BwHiGBs-in.BwLoGBs)
	}
	if !in.active {
		return 1, 0, false
	}
	return in.svcFactor, in.extraBW, true
}
