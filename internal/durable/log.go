// Package durable is the crash-safe state layer of the control plane:
// periodic JSON snapshots written atomically (temp file + fsync + rename
// + directory fsync) paired with an append-only, CRC-framed record log
// of everything applied since the last snapshot. A process that is
// SIGKILLed mid-write recovers to exactly the state it had durably
// acknowledged: the snapshot anchors the state machine, the log replays
// the tail, and a torn final record — the only damage an append-only
// writer can suffer — is detected by its checksum and truncated away.
//
// The layer is deliberately generic: snapshots are any
// internal/jsonio-validated document and records are opaque byte
// payloads, so the coordinator's coordstate/v1 documents (or any future
// subsystem's) persist through the same two primitives. Two stores
// ship: FileStore, the real fsync-backed implementation behind
// `sturgeond -state`, and MemStore, a byte-faithful in-memory twin the
// deterministic fleet simulator uses to rehearse coordinator
// crash/restart without touching a filesystem.
package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// MaxRecordLen bounds one record payload (1 MiB). The bound is part of
// the wire format: a corrupted length field larger than it reads as a
// torn tail rather than a multi-gigabyte allocation.
const MaxRecordLen = 1 << 20

// frameHeaderLen is the per-record framing overhead: a little-endian
// uint32 payload length followed by a uint32 CRC-32C of the payload.
const frameHeaderLen = 8

// castagnoli is the CRC-32C table (the polynomial with hardware support
// on both amd64 and arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// EncodeRecord frames one payload for the record log:
//
//	[4B length LE][4B CRC-32C LE][payload]
//
// Empty payloads are rejected: a zero length field is indistinguishable
// from a zero-filled (preallocated or torn) region of the log, so the
// decoder treats it as tail damage.
func EncodeRecord(payload []byte) ([]byte, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("durable: empty record")
	}
	if len(payload) > MaxRecordLen {
		return nil, fmt.Errorf("durable: record of %d bytes exceeds the %d byte cap", len(payload), MaxRecordLen)
	}
	frame := make([]byte, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHeaderLen:], payload)
	return frame, nil
}

// DecodeRecords walks a record log image from the front and returns
// every intact record plus the byte length of the clean prefix that
// holds them. Decoding stops — without error — at the first frame that
// is short, oversized, zero-length or checksum-mismatched: an
// append-only log can only be damaged at its tail, so everything after
// the first bad frame is the torn tail a recovering store truncates.
// Returned payloads are copies, safe to retain after the input is gone.
func DecodeRecords(data []byte) (records [][]byte, clean int) {
	off := 0
	for {
		if len(data)-off < frameHeaderLen {
			return records, off
		}
		n := binary.LittleEndian.Uint32(data[off:])
		if n == 0 || n > MaxRecordLen {
			return records, off
		}
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if len(data)-off-frameHeaderLen < int(n) {
			return records, off
		}
		payload := data[off+frameHeaderLen : off+frameHeaderLen+int(n)]
		if crc32.Checksum(payload, castagnoli) != sum {
			return records, off
		}
		records = append(records, append([]byte(nil), payload...))
		off += frameHeaderLen + int(n)
	}
}
