package durable

import (
	"bytes"
	"testing"
)

// FuzzDecodeRecords hammers the record-log decoder with arbitrary
// bytes. Whatever the input, the decoder must not panic, the clean
// prefix must lie within the input and consist exactly of the frames it
// returned, and re-encoding the decoded records must reproduce that
// clean prefix byte for byte (the decoder accepts nothing the encoder
// would not have written).
func FuzzDecodeRecords(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	if frame, err := EncodeRecord([]byte("seed-record")); err == nil {
		f.Add(frame)
		f.Add(append(frame[:len(frame)-1], frame[len(frame)-1]^0xff))
		f.Add(append(append([]byte(nil), frame...), frame...))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, clean := DecodeRecords(data)
		if clean < 0 || clean > len(data) {
			t.Fatalf("clean prefix %d outside input of %d bytes", clean, len(data))
		}
		var rebuilt []byte
		for _, r := range recs {
			frame, err := EncodeRecord(r)
			if err != nil {
				t.Fatalf("decoder emitted a record the encoder rejects: %v", err)
			}
			rebuilt = append(rebuilt, frame...)
		}
		if !bytes.Equal(rebuilt, data[:clean]) {
			t.Fatalf("re-encoding %d records does not reproduce the %d-byte clean prefix", len(recs), clean)
		}
		// Decoding the clean prefix alone must be a fixed point.
		again, cleanAgain := DecodeRecords(data[:clean])
		if cleanAgain != clean || len(again) != len(recs) {
			t.Fatalf("clean prefix not a decode fixed point: %d/%d vs %d/%d",
				cleanAgain, len(again), clean, len(recs))
		}
	})
}
