package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"sturgeon/internal/jsonio"
)

// ErrNoSnapshot is returned by LoadSnapshot when the store has never
// persisted a snapshot — the caller starts from its zero state and
// replays whatever records exist.
var ErrNoSnapshot = errors.New("durable: no snapshot")

// Store is the persistence surface a recoverable state machine needs.
// SaveSnapshot atomically persists a full-state document and resets the
// record log (the snapshot supersedes everything logged before it);
// Append durably adds one record; Records returns everything logged
// since the snapshot, with any torn tail already truncated away.
type Store interface {
	SaveSnapshot(v interface{}) error
	LoadSnapshot(v interface{}) error
	Append(record []byte) error
	Records() ([][]byte, error)
}

const (
	snapshotPrefix = "snapshot-"
	recordsPrefix  = "records-"
)

func snapshotName(gen uint64) string { return fmt.Sprintf("%s%08d.json", snapshotPrefix, gen) }
func recordsName(gen uint64) string  { return fmt.Sprintf("%s%08d.log", recordsPrefix, gen) }

// FileStore is the filesystem Store behind `sturgeond -state DIR`.
// Crash safety hinges on two mechanisms:
//
//   - Snapshots are written to a temp file, fsynced, renamed into place
//     and the directory fsynced — a crash leaves either the old snapshot
//     or the new one, never a half-written hybrid.
//   - Snapshot and log files are paired by a generation number in their
//     names (snapshot-00000003.json / records-00000003.log). A new
//     snapshot starts a new generation and its log starts empty, so a
//     crash between the snapshot rename and any cleanup can never cause
//     records from before the snapshot to replay on top of it.
//
// Open truncates the current log's torn tail (a record half-written at
// SIGKILL time fails its CRC) before appends resume. Every Append is
// fsynced: a report the coordinator acknowledged is a report recovery
// will replay.
type FileStore struct {
	mu  sync.Mutex
	dir string
	gen uint64
	log *os.File
}

// Open prepares a state directory (creating it if needed), adopts the
// newest snapshot generation found there, and opens that generation's
// record log for appending — truncating any torn tail first.
func Open(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	s := &FileStore{dir: dir}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, snapshotPrefix) || !strings.HasSuffix(name, ".json") {
			continue
		}
		raw := strings.TrimSuffix(strings.TrimPrefix(name, snapshotPrefix), ".json")
		gen, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			continue
		}
		if gen > s.gen {
			s.gen = gen
		}
	}
	if err := s.openLog(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the state directory the store operates in.
func (s *FileStore) Dir() string { return s.dir }

// openLog opens (creating if absent) the current generation's record
// log for appending, truncating any torn tail left by a crash.
func (s *FileStore) openLog() error {
	path := filepath.Join(s.dir, recordsName(s.gen))
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("durable: %w", err)
	}
	_, clean := DecodeRecords(data)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if clean < len(data) {
		if err := f.Truncate(int64(clean)); err != nil {
			f.Close()
			return fmt.Errorf("durable: truncating torn log tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(clean), 0); err != nil {
		f.Close()
		return fmt.Errorf("durable: %w", err)
	}
	s.log = f
	return nil
}

// syncDir fsyncs the state directory so renames and creates are durable.
func (s *FileStore) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// SaveSnapshot implements Store: validate and marshal v through jsonio,
// land it atomically as the next generation's snapshot, and start that
// generation's empty record log. Old generations are deleted last —
// a crash anywhere in between leaves at least one complete generation
// on disk, and recovery always adopts the newest.
func (s *FileStore) SaveSnapshot(v interface{}) error {
	data, err := jsonio.Marshal(v)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	next := s.gen + 1
	final := filepath.Join(s.dir, snapshotName(next))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("durable: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("durable: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if err := s.syncDir(); err != nil {
		return fmt.Errorf("durable: %w", err)
	}

	// The snapshot is durable; switch appends to the new generation's
	// empty log and clean up the superseded files (best effort — leftover
	// old generations are ignored by recovery and reaped by the next
	// snapshot).
	old := s.gen
	if s.log != nil {
		s.log.Close()
	}
	s.gen = next
	if err := s.openLog(); err != nil {
		return err
	}
	if old != next {
		os.Remove(filepath.Join(s.dir, snapshotName(old)))
		os.Remove(filepath.Join(s.dir, recordsName(old)))
	}
	return nil
}

// LoadSnapshot implements Store: parse and validate the current
// generation's snapshot into v. ErrNoSnapshot means the store has never
// snapshotted; any other error means the snapshot exists but is damaged
// or invalid — the caller's corruption-degradation ladder decides what
// happens next.
func (s *FileStore) LoadSnapshot(v interface{}) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gen == 0 {
		return ErrNoSnapshot
	}
	return jsonio.ReadFile(filepath.Join(s.dir, snapshotName(s.gen)), v)
}

// Append implements Store: frame, write and fsync one record. The
// record is durable when Append returns.
func (s *FileStore) Append(record []byte) error {
	frame, err := EncodeRecord(record)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.log.Write(frame); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if err := s.log.Sync(); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	return nil
}

// Records implements Store: every record appended since the current
// snapshot, torn tail excluded.
func (s *FileStore) Records() ([][]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := os.ReadFile(filepath.Join(s.dir, recordsName(s.gen)))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("durable: %w", err)
	}
	recs, _ := DecodeRecords(data)
	return recs, nil
}

// Close releases the log file handle. The store is not usable after.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	err := s.log.Close()
	s.log = nil
	return err
}

// MemStore is the in-memory Store twin: byte-faithful — snapshots
// round-trip through jsonio marshaling and records through the CRC
// framing, exactly like FileStore — but with no filesystem, which is
// what lets the deterministic fleet simulator rehearse coordinator
// crash/restart inside a seeded run. The Corrupt* methods let tests
// inflict the damage a real disk could.
type MemStore struct {
	mu   sync.Mutex
	snap []byte // marshaled snapshot; nil = never snapshotted
	log  []byte // framed records since the snapshot
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// SaveSnapshot implements Store.
func (s *MemStore) SaveSnapshot(v interface{}) error {
	data, err := jsonio.Marshal(v)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.snap = data
	s.log = nil
	return nil
}

// LoadSnapshot implements Store.
func (s *MemStore) LoadSnapshot(v interface{}) error {
	s.mu.Lock()
	data := append([]byte(nil), s.snap...)
	s.mu.Unlock()
	if data == nil {
		return ErrNoSnapshot
	}
	return jsonio.Unmarshal(data, v)
}

// Append implements Store.
func (s *MemStore) Append(record []byte) error {
	frame, err := EncodeRecord(record)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.log = append(s.log, frame...)
	return nil
}

// Records implements Store.
func (s *MemStore) Records() ([][]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs, _ := DecodeRecords(s.log)
	return recs, nil
}

// CorruptSnapshot overwrites the stored snapshot bytes — the test hook
// for the corrupt-snapshot rung of the degradation ladder.
func (s *MemStore) CorruptSnapshot(raw []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.snap = append([]byte(nil), raw...)
}

// TearLog truncates the framed log to n bytes, simulating a record
// half-written at SIGKILL time.
func (s *MemStore) TearLog(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n >= 0 && n < len(s.log) {
		s.log = s.log[:n]
	}
}

// CorruptLog XORs the byte at offset off, simulating silent media
// damage inside a framed record.
func (s *MemStore) CorruptLog(off int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if off >= 0 && off < len(s.log) {
		s.log[off] ^= 0xff
	}
}

// LogLen returns the framed log size in bytes (test introspection).
func (s *MemStore) LogLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.log)
}

// sortedGenerations is a test helper listing the snapshot generations
// present in a state directory, ascending.
func sortedGenerations(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var gens []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, snapshotPrefix) || !strings.HasSuffix(name, ".json") {
			continue
		}
		raw := strings.TrimSuffix(strings.TrimPrefix(name, snapshotPrefix), ".json")
		gen, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			continue
		}
		gens = append(gens, gen)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}
