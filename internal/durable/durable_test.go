package durable

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// doc is a minimal jsonio.Validator document for store tests.
type doc struct {
	Schema string `json:"schema"`
	N      int    `json:"n"`
}

func (d *doc) Validate() error {
	if d.Schema != "durable-test/v1" {
		return fmt.Errorf("bad schema %q", d.Schema)
	}
	return nil
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	var log []byte
	var want [][]byte
	for i := 0; i < 17; i++ {
		payload := bytes.Repeat([]byte{byte(i + 1)}, i*13+1)
		frame, err := EncodeRecord(payload)
		if err != nil {
			t.Fatal(err)
		}
		log = append(log, frame...)
		want = append(want, payload)
	}
	got, clean := DecodeRecords(log)
	if clean != len(log) {
		t.Fatalf("clean prefix %d, want full %d", clean, len(log))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("decoded records differ from encoded payloads")
	}
}

func TestEncodeRecordRejectsEmptyAndOversized(t *testing.T) {
	if _, err := EncodeRecord(nil); err == nil {
		t.Error("empty record accepted")
	}
	if _, err := EncodeRecord(make([]byte, MaxRecordLen+1)); err == nil {
		t.Error("oversized record accepted")
	}
}

// TestDecodeRecordsTornTail covers every way an append-only tail can be
// damaged: short header, short payload, flipped payload byte, flipped
// CRC byte, zeroed region. In each case the intact prefix must decode
// and the clean offset must stop exactly before the damage.
func TestDecodeRecordsTornTail(t *testing.T) {
	a, _ := EncodeRecord([]byte("alpha"))
	b, _ := EncodeRecord([]byte("bravo-longer-payload"))
	base := append(append([]byte(nil), a...), b...)

	mutate := []struct {
		name string
		log  []byte
	}{
		{"short header", append(append([]byte(nil), base...), 0x05, 0x00)},
		{"short payload", base[:len(base)-3]},
		{"flipped payload byte", flip(base, len(base)-1)},
		{"flipped crc byte", flip(base, len(a)+5)},
		{"zero fill", append(append([]byte(nil), base...), make([]byte, 16)...)},
	}
	for _, tc := range mutate {
		recs, clean := DecodeRecords(tc.log)
		switch tc.name {
		case "short payload", "flipped payload byte", "flipped crc byte":
			if len(recs) != 1 || string(recs[0]) != "alpha" {
				t.Errorf("%s: got %d records, want the intact first", tc.name, len(recs))
			}
			if clean != len(a) {
				t.Errorf("%s: clean %d, want %d", tc.name, clean, len(a))
			}
		default: // damage strictly after both intact records
			if len(recs) != 2 {
				t.Errorf("%s: got %d records, want 2", tc.name, len(recs))
			}
			if clean != len(base) {
				t.Errorf("%s: clean %d, want %d", tc.name, clean, len(base))
			}
		}
	}
}

func flip(data []byte, i int) []byte {
	out := append([]byte(nil), data...)
	out[i] ^= 0xff
	return out
}

func TestFileStoreSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var missing doc
	if err := s.LoadSnapshot(&missing); err != ErrNoSnapshot {
		t.Fatalf("fresh store LoadSnapshot err %v, want ErrNoSnapshot", err)
	}
	if err := s.SaveSnapshot(&doc{Schema: "durable-test/v1", N: 7}); err != nil {
		t.Fatal(err)
	}
	var got doc
	if err := s.LoadSnapshot(&got); err != nil {
		t.Fatal(err)
	}
	if got.N != 7 {
		t.Fatalf("round-tripped N = %d, want 7", got.N)
	}
	// An invalid document must never land on disk.
	if err := s.SaveSnapshot(&doc{Schema: "wrong", N: 8}); err == nil {
		t.Fatal("invalid snapshot accepted")
	}
	if err := s.LoadSnapshot(&got); err != nil || got.N != 7 {
		t.Fatalf("failed save disturbed the stored snapshot: %v, N=%d", err, got.N)
	}
}

// TestFileStoreSnapshotResetsLog pins the generation contract: records
// appended before a snapshot never replay on top of it, and old
// generation files are reaped.
func TestFileStoreSnapshotResetsLog(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for i := 0; i < 3; i++ {
		if err := s.Append([]byte(fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SaveSnapshot(&doc{Schema: "durable-test/v1", N: 1}); err != nil {
		t.Fatal(err)
	}
	recs, err := s.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("%d records survived the snapshot, want 0", len(recs))
	}
	if err := s.Append([]byte("post-0")); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveSnapshot(&doc{Schema: "durable-test/v1", N: 2}); err != nil {
		t.Fatal(err)
	}
	gens, err := sortedGenerations(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 1 || gens[0] != 2 {
		t.Fatalf("generations on disk %v, want just [2]", gens)
	}
}

// TestFileStoreRecoveryAcrossReopen is the SIGKILL rehearsal: append,
// drop the handle without any orderly shutdown, tear the log tail on
// disk, reopen, and require the intact prefix back — with appends
// continuing cleanly after the truncation point.
func TestFileStoreRecoveryAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveSnapshot(&doc{Schema: "durable-test/v1", N: 3}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Close() // no snapshot: simulate SIGKILL after the last fsynced append

	// Tear the tail mid-record, as a crash during a write would.
	logPath := filepath.Join(dir, recordsName(1))
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(logPath, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var got doc
	if err := s2.LoadSnapshot(&got); err != nil || got.N != 3 {
		t.Fatalf("snapshot lost across reopen: %v, N=%d", err, got.N)
	}
	recs, err := s2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("recovered %d records, want 3 intact (the 4th was torn)", len(recs))
	}
	if err := s2.Append([]byte("after-recovery")); err != nil {
		t.Fatal(err)
	}
	recs, err = s2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 || string(recs[3]) != "after-recovery" {
		t.Fatalf("append after truncation broken: %q", recs)
	}
}

// TestMemStoreMirrorsFileStore drives both stores through the same
// sequence and requires identical observable behaviour — the property
// that makes MemStore a valid stand-in inside the simulator.
func TestMemStoreMirrorsFileStore(t *testing.T) {
	fs, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	ms := NewMemStore()

	for _, s := range []Store{fs, ms} {
		if err := s.LoadSnapshot(&doc{}); err != ErrNoSnapshot {
			t.Fatalf("fresh %T LoadSnapshot: %v", s, err)
		}
		if err := s.Append([]byte("one")); err != nil {
			t.Fatal(err)
		}
		if err := s.SaveSnapshot(&doc{Schema: "durable-test/v1", N: 9}); err != nil {
			t.Fatal(err)
		}
		if err := s.Append([]byte("two")); err != nil {
			t.Fatal(err)
		}
		if err := s.Append([]byte("three")); err != nil {
			t.Fatal(err)
		}
	}
	fr, _ := fs.Records()
	mr, _ := ms.Records()
	if !reflect.DeepEqual(fr, mr) {
		t.Fatalf("record divergence: file %q vs mem %q", fr, mr)
	}
	var fd, md doc
	if err := fs.LoadSnapshot(&fd); err != nil {
		t.Fatal(err)
	}
	if err := ms.LoadSnapshot(&md); err != nil {
		t.Fatal(err)
	}
	if fd != md {
		t.Fatalf("snapshot divergence: %+v vs %+v", fd, md)
	}
}

func TestMemStoreDamageHooks(t *testing.T) {
	ms := NewMemStore()
	for i := 0; i < 3; i++ {
		if err := ms.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	ms.CorruptLog(ms.LogLen() - 1) // inside the last record's payload
	recs, _ := ms.Records()
	if len(recs) != 2 {
		t.Fatalf("corrupted last record still decodes: %d records", len(recs))
	}
	ms.TearLog(3)
	recs, _ = ms.Records()
	if len(recs) != 0 {
		t.Fatalf("torn-to-header log still decodes: %d records", len(recs))
	}
	ms.CorruptSnapshot([]byte("{not json"))
	if err := ms.LoadSnapshot(&doc{}); err == nil || err == ErrNoSnapshot {
		t.Fatalf("corrupt snapshot load err = %v, want a decode error", err)
	}
}
